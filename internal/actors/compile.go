package actors

import (
	"fmt"
	"sort"
	"strconv"

	"accmos/internal/graph"
	"accmos/internal/model"
	"accmos/internal/types"
)

// Compiled is the fully elaborated, scheduled model every engine consumes.
type Compiled struct {
	Model  *model.Model
	Order  []*Info // execution order (schedule-convert result)
	ByName map[string]*Info

	Inports    []*Info // root inputs, sorted by Port number
	Outports   []*Info // root outputs, sorted by Port number
	DataStores []*Info // DataStoreMemory actors, sorted by store name
}

// Info returns the elaborated info for the named actor, or nil.
func (c *Compiled) Info(name string) *Info { return c.ByName[name] }

// Compile elaborates and schedules a model:
//
//  1. resolve each actor's spec, operator and port-count legality,
//  2. build the directed computation graph over data-flow connections,
//     dropping edges into stateful (non-feedthrough) actors,
//  3. topologically sort it (deterministic tie-break) — the paper's
//     schedule convert module,
//  4. iterate port kind/width propagation to a fixpoint,
//  5. run each actor's Prepare hook.
func Compile(m *model.Model) (*Compiled, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{Model: m, ByName: make(map[string]*Info, len(m.Actors))}

	// Step 1: specs, operators, port counts.
	for _, a := range m.Actors {
		spec, err := Lookup(a.Type)
		if err != nil {
			return nil, fmt.Errorf("actor %s: %w", a.Name, err)
		}
		op := a.Operator
		if op == "" {
			op = spec.DefaultOperator
		}
		if !spec.operatorAllowed(op) {
			return nil, fmt.Errorf("actor %s (%s): operator %q not supported", a.Name, a.Type, a.Operator)
		}
		nIn := len(a.Inputs)
		if nIn < spec.MinIn || (spec.MaxIn >= 0 && nIn > spec.MaxIn) {
			return nil, fmt.Errorf("actor %s (%s): %d inputs, want %d..%s",
				a.Name, a.Type, nIn, spec.MinIn, maxStr(spec.MaxIn))
		}
		nOut := len(a.Outputs)
		if !spec.VariableOut && nOut != spec.NumOut {
			return nil, fmt.Errorf("actor %s (%s): %d outputs, want %d", a.Name, a.Type, nOut, spec.NumOut)
		}
		info := &Info{
			Actor:     a,
			Spec:      spec,
			Path:      m.Path(a),
			Operator:  op,
			OutKinds:  make([]types.Kind, nOut),
			OutWidths: make([]int, nOut),
			InKinds:   make([]types.Kind, nIn),
			InWidths:  make([]int, nIn),
			InSrc:     make([]model.PortRef, nIn),
		}
		c.ByName[a.Name] = info
	}

	// Record drivers.
	for _, conn := range m.Connections {
		dst := c.ByName[conn.DstActor]
		dst.InSrc[conn.DstPort] = model.PortRef{Actor: conn.SrcActor, Port: conn.SrcPort}
	}

	// Conditional execution: resolve EnabledBy references.
	for _, info := range c.ByName {
		en := info.Actor.Param("EnabledBy", "")
		if en == "" {
			continue
		}
		src := c.ByName[en]
		if src == nil {
			return nil, fmt.Errorf("actor %s: EnabledBy references unknown actor %q", info.Actor.Name, en)
		}
		if len(src.Actor.Outputs) == 0 {
			return nil, fmt.Errorf("actor %s: EnabledBy actor %q has no output", info.Actor.Name, en)
		}
		if en == info.Actor.Name {
			return nil, fmt.Errorf("actor %s: cannot be enabled by itself", info.Actor.Name)
		}
		info.EnabledBy = model.PortRef{Actor: en, Port: 0}
	}

	// Step 2+3: schedule conversion.
	g := graph.New()
	for _, a := range m.Actors {
		g.AddNode(a.Name)
	}
	for _, conn := range m.Connections {
		if c.ByName[conn.DstActor].Spec.Stateful {
			continue // delay semantics: reads previous-step value
		}
		g.AddEdge(conn.SrcActor, conn.DstActor)
	}
	// Enable signals must be computed before the actors they gate — even
	// stateful ones, whose data edges are otherwise relaxed.
	for _, info := range c.ByName {
		if info.Gated() {
			g.AddEdge(info.EnabledBy.Actor, info.Actor.Name)
		}
	}
	names, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("model %s: %w", m.Name, err)
	}
	c.Order = make([]*Info, len(names))
	for i, n := range names {
		c.Order[i] = c.ByName[n]
		c.Order[i].Index = i
	}

	// Step 4: kind/width fixpoint.
	if err := c.resolveTypes(); err != nil {
		return nil, err
	}

	// Step 4b: enable signals must be scalar.
	for _, info := range c.Order {
		if info.Gated() {
			src := c.ByName[info.EnabledBy.Actor]
			if src.OutWidths[0] > 1 {
				return nil, fmt.Errorf("actor %s: EnabledBy signal %q must be scalar",
					info.Actor.Name, info.EnabledBy.Actor)
			}
		}
	}

	// Step 4c: scalar-only enforcement.
	for _, info := range c.Order {
		if !info.Spec.ScalarOnly {
			continue
		}
		for i, w := range info.InWidths {
			if w > 1 {
				return nil, fmt.Errorf("actor %s (%s): input %d is a vector; %s supports scalar signals only",
					info.Actor.Name, info.Actor.Type, i, info.Actor.Type)
			}
		}
		for i, w := range info.OutWidths {
			if w > 1 {
				return nil, fmt.Errorf("actor %s (%s): output %d is a vector; %s supports scalar signals only",
					info.Actor.Name, info.Actor.Type, i, info.Actor.Type)
			}
		}
	}

	// Step 5: per-actor preparation.
	for _, info := range c.Order {
		if info.Spec.Prepare != nil {
			if err := info.Spec.Prepare(info); err != nil {
				return nil, fmt.Errorf("actor %s (%s): %w", info.Actor.Name, info.Actor.Type, err)
			}
		}
	}

	c.collectBoundary()
	return c, nil
}

func maxStr(n int) string {
	if n < 0 {
		return "∞"
	}
	return strconv.Itoa(n)
}

// resolveTypes iterates kind and width propagation until stable. Explicit
// OutDataType/OutWidth parameters are pinned once; inferred kinds are
// recomputed every pass (the spec defaults are monotone in the promotion
// lattice, so re-widening converges) — this is what lets delay-broken
// cycles settle on the kind imposed by their acyclic inputs.
func (c *Compiled) resolveTypes() error {
	// Pin explicit parameters first.
	for _, info := range c.Order {
		if s := info.Actor.Param("OutDataType", ""); s != "" && len(info.OutKinds) > 0 {
			pk, err := types.ParseKind(s)
			if err != nil {
				return fmt.Errorf("actor %s: %w", info.Actor.Name, err)
			}
			for i := range info.OutKinds {
				info.OutKinds[i] = pk
			}
		}
		if s := info.Actor.Param("OutWidth", ""); s != "" && len(info.OutWidths) > 0 {
			pw, err := strconv.Atoi(s)
			if err != nil || pw < 1 {
				return fmt.Errorf("actor %s: bad OutWidth %q", info.Actor.Name, s)
			}
			for i := range info.OutWidths {
				info.OutWidths[i] = pw
			}
		}
	}
	explicitKind := func(info *Info) bool { return info.Actor.Param("OutDataType", "") != "" }
	explicitWidth := func(info *Info) bool { return info.Actor.Param("OutWidth", "") != "" }

	const maxIter = 64
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for _, info := range c.Order {
			// Input kinds/widths from drivers.
			for i, src := range info.InSrc {
				if src.Actor == "" {
					continue
				}
				drv := c.ByName[src.Actor]
				if src.Port < len(drv.OutKinds) {
					if k := drv.OutKinds[src.Port]; k != types.Invalid && info.InKinds[i] != k {
						info.InKinds[i] = k
						changed = true
					}
					if w := drv.OutWidths[src.Port]; w != 0 && info.InWidths[i] != w {
						info.InWidths[i] = w
						changed = true
					}
				}
			}
			if len(info.OutKinds) == 0 {
				continue
			}
			// Output kind: recompute inferred defaults each pass.
			if !explicitKind(info) {
				var k types.Kind
				if info.Spec.OutKind != nil {
					k = info.Spec.OutKind(info)
				} else {
					k = types.F64
				}
				if k != types.Invalid && info.OutKinds[0] != k {
					for i := range info.OutKinds {
						info.OutKinds[i] = k
					}
					changed = true
				}
			}
			// Output width.
			if !explicitWidth(info) {
				w := 1
				if info.Spec.OutWidth != nil {
					w = info.Spec.OutWidth(info)
				}
				if w != 0 && info.OutWidths[0] != w {
					for i := range info.OutWidths {
						info.OutWidths[i] = w
					}
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if iter == maxIter-1 {
			return fmt.Errorf("model %s: type resolution did not converge", c.Model.Name)
		}
	}
	// Verify everything resolved.
	for _, info := range c.Order {
		for i, k := range info.OutKinds {
			if k == types.Invalid {
				return fmt.Errorf("actor %s: output %d type unresolved (set OutDataType)", info.Actor.Name, i)
			}
		}
		for i, k := range info.InKinds {
			if k == types.Invalid && info.InSrc[i].Actor != "" {
				return fmt.Errorf("actor %s: input %d type unresolved", info.Actor.Name, i)
			}
		}
	}
	return nil
}

// collectBoundary gathers the model's external interface.
func (c *Compiled) collectBoundary() {
	for _, info := range c.Order {
		switch info.Actor.Type {
		case "Inport":
			c.Inports = append(c.Inports, info)
		case "Outport":
			c.Outports = append(c.Outports, info)
		case "DataStoreMemory":
			c.DataStores = append(c.DataStores, info)
		}
	}
	byPort := func(list []*Info) func(i, j int) bool {
		return func(i, j int) bool {
			pi, _ := strconv.Atoi(list[i].Actor.Param("Port", "0"))
			pj, _ := strconv.Atoi(list[j].Actor.Param("Port", "0"))
			if pi != pj {
				return pi < pj
			}
			return list[i].Actor.Name < list[j].Actor.Name
		}
	}
	sort.Slice(c.Inports, byPort(c.Inports))
	sort.Slice(c.Outports, byPort(c.Outports))
	sort.Slice(c.DataStores, func(i, j int) bool {
		return c.DataStores[i].Actor.Param("Store", c.DataStores[i].Actor.Name) <
			c.DataStores[j].Actor.Param("Store", c.DataStores[j].Actor.Name)
	})
}
