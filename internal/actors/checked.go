package actors

import (
	"fmt"

	"accmos/internal/types"
)

// Checked-arithmetic emission helpers. These produce Go statements that
// compute an operation in kind k while updating an overflow (or
// division-by-zero) boolean variable, with detection conditions exactly
// matching the flags types.Add/Sub/Mul/Div raise — so generated diagnosis
// functions and the interpreter report identical findings. They are shared
// by the code generator's diagnosis-function emitter and by the actor
// templates whose checks must live inside state-update code.

// CheckedAddStmts emits `res = a + b` in kind k, or-ing overflow into
// ovfVar. res must be a declared variable of kind k; a and b must be
// side-effect-free expressions of kind k.
func CheckedAddStmts(k types.Kind, res, a, b, ovfVar string) []string {
	switch {
	case k.IsSigned():
		return []string{
			fmt.Sprintf("%s = %s + %s", res, a, b),
			fmt.Sprintf("%s = %s || ((%s^%s)&(%s^%s)) < 0", ovfVar, ovfVar, a, res, b, res),
		}
	case k.IsUnsigned():
		return []string{
			fmt.Sprintf("%s = %s + %s", res, a, b),
			fmt.Sprintf("%s = %s || %s < %s", ovfVar, ovfVar, res, a),
		}
	case k == types.Bool:
		return []string{fmt.Sprintf("%s = %s != %s", res, a, b)}
	default:
		return []string{fmt.Sprintf("%s = %s", res, binExpr(k, a, "+", b))}
	}
}

// CheckedSubStmts emits `res = a - b` in kind k with overflow detection.
func CheckedSubStmts(k types.Kind, res, a, b, ovfVar string) []string {
	switch {
	case k.IsSigned():
		return []string{
			fmt.Sprintf("%s = %s - %s", res, a, b),
			fmt.Sprintf("%s = %s || ((%s^%s)&(%s^%s)) < 0", ovfVar, ovfVar, a, b, a, res),
		}
	case k.IsUnsigned():
		return []string{
			fmt.Sprintf("%s = %s - %s", res, a, b),
			fmt.Sprintf("%s = %s || %s > %s", ovfVar, ovfVar, b, a),
		}
	case k == types.Bool:
		return []string{fmt.Sprintf("%s = %s != %s", res, a, b)}
	default:
		return []string{fmt.Sprintf("%s = %s", res, binExpr(k, a, "-", b))}
	}
}

// CheckedMulStmts emits `res = a * b` in kind k with overflow detection.
// tmp is a unique prefix for scratch variables.
func CheckedMulStmts(k types.Kind, res, a, b, ovfVar, tmp string) []string {
	switch k {
	case types.I8, types.I16, types.I32:
		w := tmp + "w"
		return []string{
			fmt.Sprintf("%s := int64(%s) * int64(%s)", w, a, b),
			fmt.Sprintf("%s = %s || int64(%s(%s)) != %s", ovfVar, ovfVar, k.GoType(), w, w),
			fmt.Sprintf("%s = %s(%s)", res, k.GoType(), w),
		}
	case types.I64:
		return []string{
			fmt.Sprintf("%s = %s * %s", res, a, b),
			fmt.Sprintf("%s = %s || (%s != 0 && %s != 0 && %s/%s != %s)", ovfVar, ovfVar, a, b, res, a, b),
		}
	case types.U8, types.U16, types.U32:
		w := tmp + "w"
		return []string{
			fmt.Sprintf("%s := uint64(%s) * uint64(%s)", w, a, b),
			fmt.Sprintf("%s = %s || uint64(%s(%s)) != %s", ovfVar, ovfVar, k.GoType(), w, w),
			fmt.Sprintf("%s = %s(%s)", res, k.GoType(), w),
		}
	case types.U64:
		return []string{
			fmt.Sprintf("%s = %s * %s", res, a, b),
			fmt.Sprintf("%s = %s || (%s != 0 && %s != 0 && %s/%s != %s)", ovfVar, ovfVar, a, b, res, a, b),
		}
	case types.Bool:
		return []string{fmt.Sprintf("%s = %s && %s", res, a, b)}
	default:
		return []string{fmt.Sprintf("%s = %s", res, binExpr(k, a, "*", b))}
	}
}

// CheckedDivStmts emits `res = a / b` in kind k, or-ing division-by-zero
// into dbzVar and overflow (signed MIN / -1) into ovfVar. Float kinds get
// the IEEE result with the zero divisor flagged.
func CheckedDivStmts(k types.Kind, res, a, b, dbzVar, ovfVar string) []string {
	switch {
	case k.IsSigned():
		return []string{
			fmt.Sprintf("if %s == 0 { %s = true; %s = 0 } else { if %s == %d && %s == -1 { %s = true }; %s = %s / %s }",
				b, dbzVar, res, a, k.MinInt(), b, ovfVar, res, a, b),
		}
	case k.IsUnsigned():
		return []string{
			fmt.Sprintf("if %s == 0 { %s = true; %s = 0 } else { %s = %s / %s }", b, dbzVar, res, res, a, b),
		}
	case k == types.Bool:
		return []string{
			fmt.Sprintf("if !%s { %s = true; %s = false } else { %s = %s }", b, dbzVar, res, res, a),
		}
	default:
		return []string{
			fmt.Sprintf("if %s == 0 { %s = true }", b, dbzVar),
			fmt.Sprintf("%s = %s", res, binExpr(k, a, "/", b)),
		}
	}
}

// joinStmts joins statements with semicolons for single-line block bodies.
func joinStmts(stmts []string) string {
	out := ""
	for i, s := range stmts {
		if i > 0 {
			out += "; "
		}
		out += s
	}
	return out
}

// NaNOrInfCond returns the Go condition evidencing a NaN/Inf result for a
// float expression of kind k (callers must import math).
func NaNOrInfCond(expr string, k types.Kind) string {
	f := expr
	if k == types.F32 {
		f = "float64(" + expr + ")"
	}
	return fmt.Sprintf("(math.IsNaN(%s) || math.IsInf(%s, 0))", f, f)
}
