package actors

import (
	"strings"
	"testing"

	"accmos/internal/model"
	"accmos/internal/types"
)

func TestRegistryHasFiftyPlusActorTypes(t *testing.T) {
	n := len(Types())
	if n < 50 {
		t.Fatalf("registry has %d actor types, paper requires > 50", n)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("FluxCapacitor"); err == nil {
		t.Fatal("unknown type must error")
	}
}

func simpleModel(t *testing.T) *model.Model {
	t.Helper()
	return model.NewBuilder("M").
		Add("In1", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1")).
		Add("In2", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "2")).
		Add("Add", "Sum", 2, 1, model.WithOperator("++")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("In1", "Add", 0).
		Wire("In2", "Add", 1).
		Wire("Add", "Out", 0).
		MustBuild()
}

func TestCompileSimple(t *testing.T) {
	c, err := Compile(simpleModel(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Order) != 4 {
		t.Fatalf("order length %d", len(c.Order))
	}
	add := c.Info("Add")
	if add.OutKind() != types.I32 {
		t.Errorf("Sum out kind = %v (promotion from i32 inputs)", add.OutKind())
	}
	if add.InKinds[0] != types.I32 || add.InKinds[1] != types.I32 {
		t.Errorf("Sum in kinds = %v", add.InKinds)
	}
	if len(c.Inports) != 2 || c.Inports[0].Actor.Name != "In1" {
		t.Errorf("inports = %v", c.Inports)
	}
	if len(c.Outports) != 1 {
		t.Errorf("outports = %v", c.Outports)
	}
	// Schedule must place Add after both inports and before Out.
	pos := map[string]int{}
	for i, info := range c.Order {
		pos[info.Actor.Name] = i
	}
	if pos["Add"] < pos["In1"] || pos["Add"] < pos["In2"] || pos["Out"] < pos["Add"] {
		t.Errorf("bad schedule: %v", pos)
	}
}

func TestCompileRejectsUnknownType(t *testing.T) {
	m := model.NewBuilder("M").Add("X", "Bogus", 0, 1).MustBuild()
	if _, err := Compile(m); err == nil || !strings.Contains(err.Error(), "unknown actor type") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileRejectsBadOperator(t *testing.T) {
	m := model.NewBuilder("M").
		Add("C", "Constant", 0, 1).
		Add("L", "Logic", 1, 1, model.WithOperator("XAND")).
		Add("T", "Terminator", 1, 0).
		Chain("C", "L", "T").
		MustBuild()
	if _, err := Compile(m); err == nil || !strings.Contains(err.Error(), "operator") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileRejectsBadPortCount(t *testing.T) {
	m := model.NewBuilder("M").
		Add("C", "Constant", 0, 1).
		Add("S", "Switch", 1, 1). // Switch needs 3 inputs
		Add("T", "Terminator", 1, 0).
		Chain("C", "S", "T").
		MustBuild()
	if _, err := Compile(m); err == nil || !strings.Contains(err.Error(), "inputs") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileAlgebraicLoopRejected(t *testing.T) {
	m := model.NewBuilder("M").
		Add("C", "Constant", 0, 1, model.WithOutKind(types.F64)).
		Add("A", "Sum", 2, 1, model.WithOperator("++"), model.WithOutKind(types.F64)).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", "0.5")).
		Add("T", "Terminator", 1, 0).
		Wire("C", "A", 0).
		Wire("G", "A", 1).
		Wire("A", "G", 0).
		Wire("A", "T", 0).
		MustBuild()
	_, err := Compile(m)
	if err == nil || !strings.Contains(err.Error(), "algebraic loop") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileDelayBreaksLoop(t *testing.T) {
	// Classic accumulator: Sum feeding a UnitDelay feeding back into Sum.
	m := model.NewBuilder("M").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1")).
		Add("Acc", "Sum", 2, 1, model.WithOperator("++")).
		Add("D", "UnitDelay", 1, 1).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("In", "Acc", 0).
		Wire("D", "Acc", 1).
		Wire("Acc", "D", 0).
		Wire("Acc", "Out", 0).
		MustBuild()
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	// Type inference must flow I32 through the loop.
	if got := c.Info("D").OutKind(); got != types.I32 {
		t.Errorf("delay kind = %v", got)
	}
	if got := c.Info("Acc").OutKind(); got != types.I32 {
		t.Errorf("sum kind = %v", got)
	}
}

func TestCompileTypePropagationThroughChain(t *testing.T) {
	m := model.NewBuilder("M").
		Add("C", "Constant", 0, 1, model.WithOutKind(types.I16), model.WithParam("Value", "5")).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", "3")).
		Add("Cv", "DataTypeConversion", 1, 1, model.WithOutKind(types.F32)).
		Add("T", "Terminator", 1, 0).
		Chain("C", "G", "Cv", "T").
		MustBuild()
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Info("G").OutKind(); got != types.I16 {
		t.Errorf("gain inherits input kind: %v", got)
	}
	if got := c.Info("Cv").OutKind(); got != types.F32 {
		t.Errorf("conversion kind = %v", got)
	}
	if got := c.Info("T").InKinds[0]; got != types.F32 {
		t.Errorf("terminator in kind = %v", got)
	}
}

func TestCompileWidthPropagation(t *testing.T) {
	m := model.NewBuilder("M").
		Add("C1", "Constant", 0, 1, model.WithOutKind(types.F64), model.WithOutWidth(3), model.WithParam("Value", "[1 2 3]")).
		Add("C2", "Constant", 0, 1, model.WithOutKind(types.F64), model.WithParam("Value", "9")).
		Add("Mx", "Mux", 2, 1).
		Add("Sel", "Selector", 1, 1, model.WithParam("Indices", "[1 4]")).
		Add("T", "Terminator", 1, 0).
		Wire("C1", "Mx", 0).
		Wire("C2", "Mx", 1).
		Wire("Mx", "Sel", 0).
		Wire("Sel", "T", 0).
		MustBuild()
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Info("Mx").OutWidth(); got != 4 {
		t.Errorf("mux width = %d", got)
	}
	if got := c.Info("Sel").OutWidth(); got != 2 {
		t.Errorf("selector width = %d", got)
	}
}

func TestCompileSelectorIndexValidation(t *testing.T) {
	m := model.NewBuilder("M").
		Add("C1", "Constant", 0, 1, model.WithOutKind(types.F64), model.WithOutWidth(2), model.WithParam("Value", "[1 2]")).
		Add("Sel", "Selector", 1, 1, model.WithParam("Indices", "[3]")).
		Add("T", "Terminator", 1, 0).
		Chain("C1", "Sel", "T").
		MustBuild()
	if _, err := Compile(m); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileDataTypeConversionRequiresTarget(t *testing.T) {
	m := model.NewBuilder("M").
		Add("C", "Constant", 0, 1).
		Add("Cv", "DataTypeConversion", 1, 1).
		Add("T", "Terminator", 1, 0).
		Chain("C", "Cv", "T").
		MustBuild()
	if _, err := Compile(m); err == nil {
		t.Fatal("DataTypeConversion without OutDataType must be rejected")
	}
}

func TestInfoCoveragePredicates(t *testing.T) {
	m := model.NewBuilder("M").
		Add("C1", "Constant", 0, 1, model.WithOutKind(types.Bool), model.WithParam("Value", "true")).
		Add("C2", "Constant", 0, 1, model.WithOutKind(types.Bool), model.WithParam("Value", "false")).
		Add("And", "Logic", 2, 1, model.WithOperator("AND")).
		Add("Not", "Logic", 1, 1, model.WithOperator("NOT")).
		Add("Sw", "Switch", 3, 1).
		Add("T1", "Terminator", 1, 0).
		Add("T2", "Terminator", 1, 0).
		Add("T3", "Terminator", 1, 0).
		Wire("C1", "And", 0).
		Wire("C2", "And", 1).
		Wire("C1", "Not", 0).
		Wire("C1", "Sw", 0).
		Wire("And", "Sw", 1).
		Wire("C2", "Sw", 2).
		Wire("And", "T1", 0).
		Wire("Not", "T2", 0).
		Wire("Sw", "T3", 0).
		MustBuild()
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	and, not, sw := c.Info("And"), c.Info("Not"), c.Info("Sw")
	if !and.ContainsBooleanLogic() || !and.IsCombinationCondition() {
		t.Error("AND must be boolean logic + combination condition")
	}
	if !not.ContainsBooleanLogic() || not.IsCombinationCondition() {
		t.Error("NOT is boolean logic but not a combination condition")
	}
	if !sw.IsBranchActor() || sw.Branches() != 2 {
		t.Errorf("Switch branch info: branch=%v n=%d", sw.IsBranchActor(), sw.Branches())
	}
	if and.IsBranchActor() {
		t.Error("Logic is not a branch actor")
	}
}

func TestCompilePathsAndIndex(t *testing.T) {
	c, err := Compile(simpleModel(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, info := range c.Order {
		if info.Index != i {
			t.Errorf("Index mismatch at %d: %d", i, info.Index)
		}
		if !strings.HasPrefix(info.Path, "M_") {
			t.Errorf("path %q missing model prefix", info.Path)
		}
	}
}
