package actors

import (
	"fmt"

	"accmos/internal/types"
)

// Continuous-model extension (the paper's §5 future work): actors whose
// state evolves as an ODE, resolved by fixed-step numerical solvers. The
// input is held constant across each step (zero-order hold), and the
// solver integrates the state from t to t+dt:
//
//   - Integrator:     dx/dt = u            (pure integration)
//   - FirstOrderLag:  dx/dt = (u - x) / τ  (the canonical RC / thermal lag)
//
// Supported solvers: euler (explicit Euler), heun (2nd-order
// Runge-Kutta), rk4 (classic 4th-order Runge-Kutta), and adams
// (2-step Adams-Bashforth, Euler-bootstrapped) — the solver family the
// paper names for continuous support. Both the interpreter and the code
// generator implement the identical float64 operation sequences, so the
// engines stay bit-equal.

var solverNames = []string{"euler", "heun", "rk4", "adams"}

// contAux holds the shared continuous-actor parameters.
type contAux struct {
	dt  float64
	tau float64 // FirstOrderLag only
	ic  float64
}

func prepareContinuous(in *Info, needTau bool) error {
	dt, err := paramF64(in, "Dt", 0.001)
	if err != nil {
		return err
	}
	if dt <= 0 {
		return fmt.Errorf("%s Dt must be positive, got %g", in.Actor.Type, dt)
	}
	aux := contAux{dt: dt}
	if needTau {
		tau, err := paramF64(in, "TimeConstant", 1)
		if err != nil {
			return err
		}
		if tau <= 0 {
			return fmt.Errorf("%s TimeConstant must be positive, got %g", in.Actor.Type, tau)
		}
		aux.tau = tau
	}
	ic, err := paramF64(in, "InitialCondition", 0)
	if err != nil {
		return err
	}
	aux.ic = ic
	in.Aux = aux
	return nil
}

func init() {
	registerIntegrator()
	registerFirstOrderLag()
}

func registerIntegrator() {
	register(&Spec{
		Type: "Integrator", MinIn: 1, MaxIn: 1, NumOut: 1,
		Stateful:        true,
		ScalarOnly:      true,
		Operators:       solverNames,
		DefaultOperator: "euler",
		OutKind:         func(*Info) types.Kind { return types.F64 },
		Prepare:         func(in *Info) error { return prepareContinuous(in, false) },
		Init: func(in *Info, st *State) {
			st.Vals = []types.Value{types.FloatVal(types.F64, in.Aux.(contAux).ic)}
		},
		Eval: func(ec *EvalCtx) { ec.SetOut(ec.State.Vals[0]) },
		Update: func(ec *EvalCtx) {
			// With the input held constant over the step, every explicit
			// solver reduces to x += dt*u; the solver choice is accepted
			// for interface parity with FirstOrderLag.
			a := ec.Info.Aux.(contAux)
			x := ec.State.Vals[0].F
			u := ec.In[0].AsFloat()
			ec.State.Vals[0] = types.FloatVal(types.F64, x+a.dt*u)
		},
		Gen: func(gc *GenCtx) error {
			a := gc.Info.Aux.(contAux)
			sv := gc.V("xc")
			gc.Prog.Global(fmt.Sprintf("var %s float64", sv))
			gc.Prog.InitStmt(fmt.Sprintf("%s = %s", sv, f64Lit(a.ic)))
			gc.L("%s = %s", gc.Out[0], sv)
			u := CastToF64(gc.In[0], gc.Info.InKinds[0])
			gc.Prog.UpdateStmt(fmt.Sprintf("%s = %s + %s*%s", sv, sv, f64Lit(a.dt), u))
			return nil
		},
	})
}

// lagStep integrates dx/dt = (u-x)/tau one step with the chosen solver.
// fPrev carries the previous derivative sample for Adams-Bashforth; the
// boolean reports whether fPrev is valid afterwards. The exact operation
// order here is mirrored textually by the generated code — change both or
// neither.
func lagStep(solver string, x, u, dt, tau, fPrev float64, havePrev bool) (x1, fOut float64) {
	f := func(xv float64) float64 { return (u - xv) / tau }
	switch solver {
	case "euler":
		k1 := f(x)
		return x + dt*k1, k1
	case "heun":
		k1 := f(x)
		k2 := f(x + dt*k1)
		return x + dt*(k1+k2)/2, k1
	case "rk4":
		k1 := f(x)
		k2 := f(x + dt/2*k1)
		k3 := f(x + dt/2*k2)
		k4 := f(x + dt*k3)
		return x + dt/6*(k1+2*k2+2*k3+k4), k1
	case "adams":
		k1 := f(x)
		if !havePrev {
			return x + dt*k1, k1 // Euler bootstrap
		}
		return x + dt*(1.5*k1-0.5*fPrev), k1
	}
	return x, 0
}

// LagStep is exported for tests that cross-check solver accuracy against
// the analytic solution.
func LagStep(solver string, x, u, dt, tau, fPrev float64, havePrev bool) (float64, float64) {
	return lagStep(solver, x, u, dt, tau, fPrev, havePrev)
}

func registerFirstOrderLag() {
	register(&Spec{
		Type: "FirstOrderLag", MinIn: 1, MaxIn: 1, NumOut: 1,
		Stateful:        true,
		ScalarOnly:      true,
		Operators:       solverNames,
		DefaultOperator: "rk4",
		OutKind:         func(*Info) types.Kind { return types.F64 },
		Prepare:         func(in *Info) error { return prepareContinuous(in, true) },
		Init: func(in *Info, st *State) {
			st.Vals = []types.Value{
				types.FloatVal(types.F64, in.Aux.(contAux).ic), // x
				types.FloatVal(types.F64, 0),                   // fPrev
				types.BoolVal(false),                           // havePrev
			}
		},
		Eval: func(ec *EvalCtx) { ec.SetOut(ec.State.Vals[0]) },
		Update: func(ec *EvalCtx) {
			a := ec.Info.Aux.(contAux)
			x := ec.State.Vals[0].F
			u := ec.In[0].AsFloat()
			x1, fOut := lagStep(ec.Info.Operator, x, u, a.dt, a.tau, ec.State.Vals[1].F, ec.State.Vals[2].B)
			ec.State.Vals[0] = types.FloatVal(types.F64, x1)
			ec.State.Vals[1] = types.FloatVal(types.F64, fOut)
			ec.State.Vals[2] = types.BoolVal(true)
		},
		Gen: func(gc *GenCtx) error {
			a := gc.Info.Aux.(contAux)
			sv := gc.V("lag")
			gc.Prog.Global(fmt.Sprintf("var %s float64", sv))
			gc.Prog.InitStmt(fmt.Sprintf("%s = %s", sv, f64Lit(a.ic)))
			gc.L("%s = %s", gc.Out[0], sv)
			u := CastToF64(gc.In[0], gc.Info.InKinds[0])
			dt, tau := f64Lit(a.dt), f64Lit(a.tau)
			// The emitted operation sequences mirror lagStep exactly.
			switch gc.Info.Operator {
			case "euler":
				gc.Prog.UpdateStmt(fmt.Sprintf(
					"{ u := %s; k1 := (u - %s) / %s; %s = %s + %s*k1 }",
					u, sv, tau, sv, sv, dt))
			case "heun":
				gc.Prog.UpdateStmt(fmt.Sprintf(
					"{ u := %s; k1 := (u - %s) / %s; k2 := (u - (%s + %s*k1)) / %s; %s = %s + %s*(k1+k2)/2 }",
					u, sv, tau, sv, dt, tau, sv, sv, dt))
			case "rk4":
				gc.Prog.UpdateStmt(fmt.Sprintf(
					"{ u := %s; k1 := (u - %s) / %s; k2 := (u - (%s + %s/2*k1)) / %s; "+
						"k3 := (u - (%s + %s/2*k2)) / %s; k4 := (u - (%s + %s*k3)) / %s; "+
						"%s = %s + %s/6*(k1+2*k2+2*k3+k4) }",
					u, sv, tau, sv, dt, tau, sv, dt, tau, sv, dt, tau, sv, sv, dt))
			case "adams":
				fp := gc.V("lagFp")
				hp := gc.V("lagHp")
				gc.Prog.Global(fmt.Sprintf("var %s float64", fp))
				gc.Prog.Global(fmt.Sprintf("var %s bool", hp))
				gc.Prog.InitStmt(fmt.Sprintf("%s = 0", fp))
				gc.Prog.InitStmt(fmt.Sprintf("%s = false", hp))
				gc.Prog.UpdateStmt(fmt.Sprintf(
					"{ u := %s; k1 := (u - %s) / %s; if !%s { %s = %s + %s*k1 } else { %s = %s + %s*(1.5*k1-0.5*%s) }; %s = k1; %s = true }",
					u, sv, tau, hp, sv, sv, dt, sv, sv, dt, fp, fp, hp))
			}
			return nil
		},
	})
}
