package actors

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"accmos/internal/types"
)

// paramF64 parses a float64 actor parameter with a default.
func paramF64(in *Info, name string, def float64) (float64, error) {
	s := in.Actor.Param(name, "")
	if s == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q: %v", name, s, err)
	}
	return f, nil
}

// paramI64 parses an int64 actor parameter with a default.
func paramI64(in *Info, name string, def int64) (int64, error) {
	s := in.Actor.Param(name, "")
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q: %v", name, s, err)
	}
	return v, nil
}

// paramValue parses a typed value parameter in kind k with a default
// literal.
func paramValue(in *Info, name string, k types.Kind, def string) (types.Value, error) {
	s := in.Actor.Param(name, def)
	v, err := types.ParseValue(k, s)
	if err != nil {
		return types.Value{}, fmt.Errorf("parameter %s: %v", name, err)
	}
	return v, nil
}

// paramF64Slice parses a "[a b c]" style float list.
func paramF64Slice(in *Info, name string) ([]float64, error) {
	s := strings.TrimSpace(in.Actor.Param(name, ""))
	if s == "" {
		return nil, fmt.Errorf("parameter %s is required", name)
	}
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, fmt.Errorf("parameter %s is empty", name)
	}
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("parameter %s element %d: %v", name, i, err)
		}
		out[i] = v
	}
	return out, nil
}

// f64Lit formats a float64 as an exactly round-tripping Go literal.
func f64Lit(f float64) string {
	switch {
	case math.IsNaN(f):
		return "math.NaN()"
	case math.IsInf(f, 1):
		return "math.Inf(1)"
	case math.IsInf(f, -1):
		return "math.Inf(-1)"
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}
