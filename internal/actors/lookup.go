package actors

import (
	"fmt"

	"accmos/internal/types"
)

// Lookup actors: table interpolation and direct indexing. LookupDirect is
// the array-out-of-bounds diagnosis site.

func init() {
	registerLookup1D()
	registerLookupDirect()
}

// lut1DAux holds breakpoints and table values.
type lut1DAux struct{ bp, table []float64 }

func registerLookup1D() {
	register(&Spec{
		Type: "Lookup1D", MinIn: 1, MaxIn: 1, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(in *Info) types.Kind { return floatOrF64(in.InKinds[0]) },
		Prepare: func(in *Info) error {
			bp, err := paramF64Slice(in, "BreakPoints")
			if err != nil {
				return err
			}
			table, err := paramF64Slice(in, "Table")
			if err != nil {
				return err
			}
			if len(bp) != len(table) {
				return fmt.Errorf("Lookup1D: %d breakpoints vs %d table entries", len(bp), len(table))
			}
			if len(bp) < 2 {
				return fmt.Errorf("Lookup1D needs at least 2 breakpoints")
			}
			for i := 1; i < len(bp); i++ {
				if bp[i] <= bp[i-1] {
					return fmt.Errorf("Lookup1D breakpoints must be strictly increasing at %d", i)
				}
			}
			in.Aux = lut1DAux{bp, table}
			return nil
		},
		Eval: func(ec *EvalCtx) {
			a := ec.Info.Aux.(lut1DAux)
			x := ec.In[0].AsFloat()
			y := lookup1D(a.bp, a.table, x)
			ec.convertOutFrom(types.FloatVal(types.F64, y), ec.Info.OutKind())
		},
		Gen: func(gc *GenCtx) error {
			a := gc.Info.Aux.(lut1DAux)
			k := gc.Info.OutKind()
			bp, tb := gc.V("bp"), gc.V("tb")
			gc.Prog.Global(fmt.Sprintf("var %s = %s", bp, f64SliceLiteral(a.bp)))
			gc.Prog.Global(fmt.Sprintf("var %s = %s", tb, f64SliceLiteral(a.table)))
			x := gc.V("x")
			gc.L("%s := %s", x, CastToF64(gc.In[0], gc.Info.InKinds[0]))
			gc.L("%s = %s", gc.Out[0], Cast(fmt.Sprintf("lookup1D(%s[:], %s[:], %s)", bp, tb, x), types.F64, k))
			return nil
		},
	})
}

// lookup1D performs clamped linear interpolation; the generated runtime
// embeds a byte-identical copy (see codegen's runtime template — keep the
// two in sync).
func lookup1D(bp, table []float64, x float64) float64 {
	n := len(bp)
	if x <= bp[0] {
		return table[0]
	}
	if x >= bp[n-1] {
		return table[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if bp[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (x - bp[lo]) / (bp[lo+1] - bp[lo])
	return table[lo] + t*(table[lo+1]-table[lo])
}

// Lookup1DInterp is exported for tests that cross-check the generated
// runtime helper against the interpreter's implementation.
func Lookup1DInterp(bp, table []float64, x float64) float64 { return lookup1D(bp, table, x) }

func f64SliceLiteral(vals []float64) string {
	s := fmt.Sprintf("[%d]float64{", len(vals))
	for i, v := range vals {
		if i > 0 {
			s += ", "
		}
		s += f64Lit(v)
	}
	return s + "}"
}

// lutDirectAux holds the direct-lookup table in the output kind.
type lutDirectAux struct{ table []types.Value }

// LookupDirectTableLen exposes a LookupDirect actor's table size for the
// code generator's out-of-bounds diagnosis.
func LookupDirectTableLen(in *Info) int {
	if a, ok := in.Aux.(lutDirectAux); ok {
		return len(a.table)
	}
	return 0
}

func registerLookupDirect() {
	register(&Spec{
		Type: "LookupDirect", MinIn: 1, MaxIn: 1, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(*Info) types.Kind { return types.F64 },
		Prepare: func(in *Info) error {
			tv, err := paramValue(in, "Table", in.OutKind(), "")
			if err != nil {
				return err
			}
			if !tv.IsVector() || tv.Width() < 1 {
				return fmt.Errorf("LookupDirect Table must be a non-empty vector")
			}
			in.Aux = lutDirectAux{table: tv.Elems}
			return nil
		},
		Eval: func(ec *EvalCtx) {
			a := ec.Info.Aux.(lutDirectAux)
			iv, _ := types.Convert(ec.In[0], types.I64)
			idx := iv.I // 1-based
			n := int64(len(a.table))
			if idx < 1 {
				ec.Flags.OutOfRange = true
				idx = 1
			} else if idx > n {
				ec.Flags.OutOfRange = true
				idx = n
			}
			ec.SetOut(a.table[idx-1])
		},
		Gen: func(gc *GenCtx) error {
			a := gc.Info.Aux.(lutDirectAux)
			k := gc.Info.OutKind()
			tb := gc.V("tbl")
			lit := types.Value{Kind: k, Elems: a.table}.GoLiteral()
			gc.Prog.Global(fmt.Sprintf("var %s = %s", tb, lit))
			iv := gc.V("li")
			gc.L("%s := %s", iv, Cast(gc.In[0], gc.Info.InKinds[0], types.I64))
			gc.Block(fmt.Sprintf("if %s < 1", iv), func() {
				gc.L("%s = 1", iv)
			})
			gc.Block(fmt.Sprintf("else if %s > %d", iv, len(a.table)), func() {
				gc.L("%s = %d", iv, len(a.table))
			})
			gc.L("%s = %s[%s-1]", gc.Out[0], tb, iv)
			return nil
		},
	})
}
