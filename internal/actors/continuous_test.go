package actors

import (
	"math"
	"testing"

	"accmos/internal/model"
	"accmos/internal/types"
)

func TestIntegratorAccumulates(t *testing.T) {
	r := newRig(t, "Integrator", "euler", []types.Kind{types.F64},
		model.WithParam("Dt", "0.5"), model.WithParam("InitialCondition", "1"))
	out, _ := r.eval(0, f64v(4))
	if out.F != 1 {
		t.Errorf("initial = %v", out)
	}
	r.update(f64v(4))
	out, _ = r.eval(1, f64v(4))
	if out.F != 3 { // 1 + 0.5*4
		t.Errorf("after one step = %v", out)
	}
}

// lagSim integrates the first-order lag for n steps with constant input.
func lagSim(t *testing.T, solver string, dt float64, n int) float64 {
	t.Helper()
	r := newRig(t, "FirstOrderLag", solver, []types.Kind{types.F64},
		model.WithParam("Dt", formatF(dt)),
		model.WithParam("TimeConstant", "1"),
		model.WithParam("InitialCondition", "0"))
	u := f64v(1)
	for i := 0; i < n; i++ {
		r.eval(int64(i), u)
		r.update(u)
	}
	out, _ := r.eval(int64(n), u)
	return out.F
}

func formatF(f float64) string {
	return types.FloatVal(types.F64, f).String()
}

// TestLagSolverAccuracyOrdering checks each solver against the analytic
// step response x(t) = 1 - e^-t (τ=1, u=1, x0=0): higher-order solvers
// must be strictly more accurate at the same step size.
func TestLagSolverAccuracyOrdering(t *testing.T) {
	const dt = 0.1
	const n = 10 // t = 1
	exact := 1 - math.Exp(-1)
	errOf := func(solver string) float64 {
		return math.Abs(lagSim(t, solver, dt, n) - exact)
	}
	euler := errOf("euler")
	heun := errOf("heun")
	rk4 := errOf("rk4")
	adams := errOf("adams")
	if euler < 1e-4 {
		t.Errorf("euler suspiciously accurate: %g", euler)
	}
	if !(rk4 < heun && heun < euler) {
		t.Errorf("accuracy ordering violated: euler %g, heun %g, rk4 %g", euler, heun, rk4)
	}
	if !(adams < euler) {
		t.Errorf("adams %g should beat euler %g", adams, euler)
	}
	if rk4 > 1e-6 {
		t.Errorf("rk4 error %g too large for dt=0.1", rk4)
	}
}

// TestLagSolverConvergence: halving the step size must shrink the error by
// roughly the solver's order.
func TestLagSolverConvergence(t *testing.T) {
	exact := 1 - math.Exp(-1)
	cases := []struct {
		solver   string
		minRatio float64 // error(dt) / error(dt/2) lower bound
	}{
		{"euler", 1.8}, // first order: ~2
		{"heun", 3.5},  // second order: ~4
		{"adams", 3.0}, // second order after bootstrap
	}
	for _, c := range cases {
		eCoarse := math.Abs(lagSim(t, c.solver, 0.1, 10) - exact)
		eFine := math.Abs(lagSim(t, c.solver, 0.05, 20) - exact)
		if eFine == 0 {
			continue
		}
		if ratio := eCoarse / eFine; ratio < c.minRatio {
			t.Errorf("%s convergence ratio %g < %g (coarse %g, fine %g)",
				c.solver, ratio, c.minRatio, eCoarse, eFine)
		}
	}
}

func TestContinuousValidation(t *testing.T) {
	b := model.NewBuilder("BAD").
		Add("C", "Constant", 0, 1, model.WithOutKind(types.F64)).
		Add("L", "FirstOrderLag", 1, 1, model.WithParam("Dt", "-1")).
		Add("T", "Terminator", 1, 0).
		Chain("C", "L", "T")
	if _, err := Compile(b.MustBuild()); err == nil {
		t.Error("negative Dt must be rejected")
	}
	b2 := model.NewBuilder("BAD2").
		Add("C", "Constant", 0, 1, model.WithOutKind(types.F64)).
		Add("L", "FirstOrderLag", 1, 1, model.WithParam("TimeConstant", "0")).
		Add("T", "Terminator", 1, 0).
		Chain("C", "L", "T")
	if _, err := Compile(b2.MustBuild()); err == nil {
		t.Error("zero time constant must be rejected")
	}
	b3 := model.NewBuilder("BAD3").
		Add("C", "Constant", 0, 1, model.WithOutKind(types.F64)).
		Add("L", "Integrator", 1, 1, model.WithOperator("rk9")).
		Add("T", "Terminator", 1, 0).
		Chain("C", "L", "T")
	if _, err := Compile(b3.MustBuild()); err == nil {
		t.Error("unknown solver must be rejected")
	}
}

func TestLagStepAdamsBootstrap(t *testing.T) {
	// First call (no history) must match Euler exactly.
	x1a, f1 := LagStep("adams", 0, 1, 0.1, 1, 0, false)
	x1e, _ := LagStep("euler", 0, 1, 0.1, 1, 0, false)
	if x1a != x1e {
		t.Errorf("adams bootstrap %g != euler %g", x1a, x1e)
	}
	// Second call uses the stored derivative.
	x2, _ := LagStep("adams", x1a, 1, 0.1, 1, f1, true)
	want := x1a + 0.1*(1.5*(1-x1a)-0.5*f1)
	if x2 != want {
		t.Errorf("adams step 2 = %g, want %g", x2, want)
	}
}
