package actors

import (
	"math"
	"testing"

	"accmos/internal/model"
	"accmos/internal/types"
)

func TestEvalPIDController(t *testing.T) {
	r := newRig(t, "PIDController", "", []types.Kind{types.F64},
		model.WithParam("Kp", "2"), model.WithParam("Ki", "0.5"), model.WithParam("Kd", "1"))
	// Step 0: e=3 -> u = 2*3 + 0 + 1*(3-0) = 9; then I += 0.5*3 = 1.5.
	out, _ := r.eval(0, f64v(3))
	if out.F != 9 {
		t.Errorf("pid step0 = %v", out)
	}
	r.update(f64v(3))
	// Step 1: e=1 -> u = 2*1 + 1.5 + 1*(1-3) = 1.5.
	out, _ = r.eval(1, f64v(1))
	if out.F != 1.5 {
		t.Errorf("pid step1 = %v", out)
	}
}

func TestEvalMovingAverage(t *testing.T) {
	r := newRig(t, "MovingAverage", "", []types.Kind{types.F64}, model.WithParam("Window", "3"))
	ins := []float64{3, 6, 9, 12}
	wants := []float64{1, 3, 6, 9} // window includes current, zeros before start
	for i := range ins {
		out, _ := r.eval(int64(i), f64v(ins[i]))
		if out.F != wants[i] {
			t.Errorf("ma@%d = %v, want %g", i, out, wants[i])
		}
		r.update(f64v(ins[i]))
	}
}

func TestEvalAtan2(t *testing.T) {
	r := newRig(t, "Atan2", "", []types.Kind{types.F64, types.F64})
	out, _ := r.eval(0, f64v(1), f64v(1))
	if out.F != math.Pi/4 {
		t.Errorf("atan2(1,1) = %v", out)
	}
	out, _ = r.eval(0, f64v(-1), f64v(0))
	if out.F != -math.Pi/2 {
		t.Errorf("atan2(-1,0) = %v", out)
	}
}

func TestMovingAverageWindowValidation(t *testing.T) {
	b := model.NewBuilder("BAD").
		Add("C", "Constant", 0, 1, model.WithOutKind(types.F64)).
		Add("M", "MovingAverage", 1, 1, model.WithParam("Window", "0")).
		Add("T", "Terminator", 1, 0).
		Chain("C", "M", "T")
	if _, err := Compile(b.MustBuild()); err == nil {
		t.Error("zero window must be rejected")
	}
}
