package actors

import "accmos/internal/types"

// State is the per-actor persistent interpreter state. Vals holds generic
// state slots (initial conditions, hysteresis flags as 0/1 values); Ring
// and Pos implement delay lines; Seed holds PRNG state.
type State struct {
	Vals []types.Value
	Ring []types.Value
	Pos  int
	Seed uint64
}

// DataStoreAccess lets data-store read/write actors reach the engine's
// named stores.
type DataStoreAccess interface {
	DSRead(name string) types.Value
	DSWrite(name string, v types.Value)
}

// EvalCtx is the per-invocation context an actor's Eval/Update receives.
// The engine resets the per-step fields (Flags, Branch, Decision, Conds)
// before each Eval.
type EvalCtx struct {
	Info *Info
	Step int64

	In   []types.Value // current input values, index = input port
	Outs []types.Value // outputs to fill, index = output port

	// ExternalIn carries the test-case value for Inport actors.
	ExternalIn types.Value

	State *State
	DS    DataStoreAccess

	// Diagnosis flags raised by the computation.
	Flags types.OpResult

	// Coverage reporting.
	Branch   int    // branch index executed (-1 none)
	Decision int8   // -1 none, 0 decision false, 1 decision true
	Conds    []bool // condition input values for MC/DC
}

// Reset clears the per-step reporting fields.
func (ec *EvalCtx) Reset(step int64) {
	ec.Step = step
	ec.Flags = types.OpResult{}
	ec.Branch = -1
	ec.Decision = -1
	ec.Conds = ec.Conds[:0]
}

// SetOut assigns output port 0 — the common case.
func (ec *EvalCtx) SetOut(v types.Value) { ec.Outs[0] = v }

// Out returns output port 0.
func (ec *EvalCtx) Out() types.Value { return ec.Outs[0] }

// setDecision records the boolean outcome for decision coverage.
func (ec *EvalCtx) setDecision(b bool) {
	if b {
		ec.Decision = 1
	} else {
		ec.Decision = 0
	}
}

// convertOut converts v to the actor's output kind, accumulating conversion
// flags, and assigns output 0.
func (ec *EvalCtx) convertOut(v types.Value) {
	out, res := types.Convert(v, ec.Info.OutKind())
	ec.Flags.OutOfRange = ec.Flags.OutOfRange || res.OutOfRange
	ec.Flags.PrecisionLoss = ec.Flags.PrecisionLoss || res.PrecisionLoss
	ec.Outs[0] = out
}
