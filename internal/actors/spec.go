// Package actors is the actor semantics registry: for each supported actor
// type it defines port rules, scheduling properties (feedthrough vs
// stateful), coverage characteristics (branch / boolean logic / combination
// condition), interpreter semantics (Eval/Update) and code-generation
// templates (Gen). It also implements model elaboration: schedule
// conversion via delay-aware topological sorting and port type resolution,
// producing the Compiled form every simulation engine consumes.
package actors

import (
	"fmt"
	"sort"

	"accmos/internal/model"
	"accmos/internal/types"
)

// Spec describes the static properties and semantics of one actor type.
type Spec struct {
	Type model.ActorType

	// Port rules. MaxIn < 0 means unbounded. NumOut is the fixed output
	// count unless VariableOut (Demux) where outputs follow the instance.
	MinIn, MaxIn int
	NumOut       int
	VariableOut  bool

	// Stateful actors have no direct feedthrough: their output depends only
	// on state, so their input edges do not constrain the schedule.
	Stateful bool

	// ScalarOnly actors reject vector ports at elaboration; the rest are
	// elementwise-capable in both engines.
	ScalarOnly bool

	// Coverage characteristics (paper Algorithm 1 lines 5-10).
	Branch      bool                 // condition coverage: has executable branches
	BranchCount func(info *Info) int // number of branches when Branch
	BooleanOut  bool                 // decision coverage: boolean statement
	Combination bool                 // MC/DC when the instance has >= 2 inputs

	// Operators lists the legal Operator strings; empty means the operator
	// field is unused. DefaultOperator is applied when the instance leaves
	// the operator empty. FreeOperator skips the registry-level check
	// entirely (Sum/Product sign strings are validated in Prepare).
	Operators       []string
	DefaultOperator string
	FreeOperator    bool

	// OutKind computes the default output kind when the instance does not
	// set OutDataType. It may return types.Invalid if input kinds are not
	// yet resolved; elaboration iterates to a fixpoint.
	OutKind func(info *Info) types.Kind

	// OutWidth computes the default output width (0 = not yet resolvable,
	// nil = always 1).
	OutWidth func(info *Info) int

	// Prepare parses instance parameters into info.Aux and validates them.
	Prepare func(info *Info) error

	// Init populates the interpreter state for a fresh simulation.
	Init func(info *Info, st *State)

	// Eval computes the actor's outputs for the current step.
	Eval func(ec *EvalCtx)

	// Update commits end-of-step state for stateful actors (runs after
	// every actor's Eval, reading current-step input values).
	Update func(ec *EvalCtx)

	// Gen emits the actor's computation into generated code.
	Gen func(gc *GenCtx) error
}

// registry holds every known actor type.
var registry = map[model.ActorType]*Spec{}

func register(s *Spec) {
	if _, dup := registry[s.Type]; dup {
		panic(fmt.Sprintf("actors: duplicate registration of %q", s.Type))
	}
	registry[s.Type] = s
}

// Lookup returns the spec for the given actor type.
func Lookup(t model.ActorType) (*Spec, error) {
	s, ok := registry[t]
	if !ok {
		return nil, fmt.Errorf("actors: unknown actor type %q", t)
	}
	return s, nil
}

// Types returns all registered actor type names, sorted.
func Types() []string {
	out := make([]string, 0, len(registry))
	for t := range registry {
		out = append(out, string(t))
	}
	sort.Strings(out)
	return out
}

// operatorAllowed reports whether op is legal for s.
func (s *Spec) operatorAllowed(op string) bool {
	if s.FreeOperator {
		return true
	}
	if len(s.Operators) == 0 {
		return op == ""
	}
	for _, o := range s.Operators {
		if o == op {
			return true
		}
	}
	return false
}

// Info is the elaborated view of one actor instance: resolved port kinds
// and widths, drivers, schedule position, and prepared parameters.
type Info struct {
	Actor *model.Actor
	Spec  *Spec
	Path  string
	Index int // position in execution order

	Operator string // resolved (instance or spec default)

	OutKinds  []types.Kind
	OutWidths []int
	InKinds   []types.Kind
	InWidths  []int
	InSrc     []model.PortRef // driver output ref per input, zero if none

	// EnabledBy gates conditional execution (Simulink enabled-subsystem
	// semantics with reset outputs): when the referenced boolean signal is
	// false at a step, the actor does not execute — its outputs are zero,
	// its state freezes, and no coverage, diagnosis or monitoring fires.
	// A zero ref (empty Actor) means always enabled.
	EnabledBy model.PortRef

	Aux interface{} // per-type prepared parameters
}

// Gated reports whether the actor executes conditionally.
func (in *Info) Gated() bool { return in.EnabledBy.Actor != "" }

// OutKind returns the kind of output 0 (the common single-output case).
func (in *Info) OutKind() types.Kind {
	if len(in.OutKinds) == 0 {
		return types.Invalid
	}
	return in.OutKinds[0]
}

// OutWidth returns the width of output 0.
func (in *Info) OutWidth() int {
	if len(in.OutWidths) == 0 {
		return 1
	}
	return in.OutWidths[0]
}

// NumIn returns the instance's input count.
func (in *Info) NumIn() int { return len(in.Actor.Inputs) }

// IsBranchActor mirrors the paper's actorInfo.isBranchActor predicate.
func (in *Info) IsBranchActor() bool { return in.Spec.Branch }

// ContainsBooleanLogic mirrors actorInfo.containBooleanLogic.
func (in *Info) ContainsBooleanLogic() bool { return in.Spec.BooleanOut }

// IsCombinationCondition mirrors actorInfo.isCombinationCondition: a
// boolean combination over two or more conditions.
func (in *Info) IsCombinationCondition() bool {
	return in.Spec.Combination && in.NumIn() >= 2
}

// Branches returns the branch count for condition coverage (0 when the
// actor is not a branch actor).
func (in *Info) Branches() int {
	if !in.Spec.Branch || in.Spec.BranchCount == nil {
		return 0
	}
	return in.Spec.BranchCount(in)
}
