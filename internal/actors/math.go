package actors

import (
	"fmt"
	"math"
	"strings"

	"accmos/internal/model"
	"accmos/internal/types"
)

// Math actors: arithmetic and elementary functions. Generation invariant:
// every floating-point operation in generated code reproduces the
// interpreter's evaluation order and rounding (float32 math runs through
// float64 and rounds once per operation), so output hashes match exactly.

func init() {
	registerSum()
	registerProduct()
	registerGain()
	registerBias()
	registerAbs()
	registerUnaryMinus()
	registerMath()
	registerSqrt()
	registerMinMax()
	registerSign()
	registerRounding()
	registerPolynomial()
	registerDotProduct()
	registerReduce()
	registerMod()
}

// binExpr renders "a op b" in kind k with interpreter-equivalent rounding.
func binExpr(k types.Kind, a, op, b string) string {
	if k == types.F32 {
		return fmt.Sprintf("float32(float64(%s) %s float64(%s))", a, op, b)
	}
	return fmt.Sprintf("(%s %s %s)", a, op, b)
}

// castIn returns input p's element expression converted to kind k.
func castIn(gc *GenCtx, p int, ix string, k types.Kind) string {
	return Cast(gc.InElem(p, ix), gc.Info.InKinds[p], k)
}

// signString normalises a Sum/Product operator string to one rune per
// input.
func signString(op string, nIn int, def byte) (string, error) {
	if op == "" {
		return strings.Repeat(string(def), nIn), nil
	}
	if len(op) == 1 && nIn > 1 {
		return strings.Repeat(op, nIn), nil
	}
	if len(op) != nIn {
		return "", fmt.Errorf("operator %q has %d signs for %d inputs", op, len(op), nIn)
	}
	return op, nil
}

func registerSum() {
	register(&Spec{
		Type: "Sum", MinIn: 1, MaxIn: 8, NumOut: 1,
		FreeOperator: true,
		OutKind:      func(in *Info) types.Kind { return promoteInputs(in) },
		OutWidth:     maxInWidth,
		Prepare: func(in *Info) error {
			signs, err := signString(in.Operator, in.NumIn(), '+')
			if err != nil {
				return err
			}
			for i := 0; i < len(signs); i++ {
				if signs[i] != '+' && signs[i] != '-' {
					return fmt.Errorf("Sum operator %q: sign %q not in {+,-}", in.Operator, signs[i])
				}
			}
			in.Aux = signs
			return nil
		},
		Eval: func(ec *EvalCtx) {
			k := ec.Info.OutKind()
			signs := ec.Info.Aux.(string)
			var acc types.Value
			var res types.OpResult
			if signs[0] == '+' {
				var cr types.ConvertResult
				acc, cr = types.Convert(ec.In[0], k)
				res.OutOfRange = cr.OutOfRange
			} else {
				var r types.OpResult
				acc, r = types.Neg(k, ec.In[0])
				res.Merge(r)
			}
			for i := 1; i < len(ec.In); i++ {
				var r types.OpResult
				if signs[i] == '+' {
					acc, r = types.Add(k, acc, ec.In[i])
				} else {
					acc, r = types.Sub(k, acc, ec.In[i])
				}
				res.Merge(r)
			}
			ec.Flags.Merge(res)
			ec.SetOut(acc)
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			signs := gc.Info.Aux.(string)
			gc.ForEachOut(func(ix string) {
				var expr string
				if signs[0] == '+' {
					expr = castIn(gc, 0, ix, k)
				} else {
					expr = binExpr(k, GoZero(k), "-", castIn(gc, 0, ix, k))
				}
				for i := 1; i < len(gc.In); i++ {
					expr = binExpr(k, expr, string(signs[i]), castIn(gc, i, ix, k))
				}
				gc.L("%s = %s", gc.OutElem(0, ix), expr)
			})
			return nil
		},
	})
}

// maxInWidth is the OutWidth rule for elementwise actors: the widest
// resolved input width (scalars broadcast), or 0 while inputs are pending.
func maxInWidth(in *Info) int {
	w := 0
	for _, iw := range in.InWidths {
		if iw > w {
			w = iw
		}
	}
	return w
}

// promoteInputs folds types.Promote over the resolved input kinds.
// Unresolved inputs are skipped: in delay-broken cycles the stateful
// actor's kind derives from this very actor, so the cycle's kind is pinned
// by its acyclic inputs and the elaboration fixpoint closes the loop.
// With no resolved input at all it returns Invalid and elaboration retries.
func promoteInputs(in *Info) types.Kind {
	k := types.Invalid
	for _, ik := range in.InKinds {
		if ik == types.Invalid {
			continue
		}
		if k == types.Invalid {
			k = ik
		} else {
			k = types.Promote(k, ik)
		}
	}
	return k
}

func registerProduct() {
	register(&Spec{
		Type: "Product", MinIn: 1, MaxIn: 8, NumOut: 1,
		FreeOperator: true,
		OutKind:      func(in *Info) types.Kind { return promoteInputs(in) },
		OutWidth:     maxInWidth,
		Prepare: func(in *Info) error {
			signs, err := signString(in.Operator, in.NumIn(), '*')
			if err != nil {
				return err
			}
			for i := 0; i < len(signs); i++ {
				if signs[i] != '*' && signs[i] != '/' {
					return fmt.Errorf("Product operator %q: sign %q not in {*,/}", in.Operator, signs[i])
				}
			}
			in.Aux = signs
			return nil
		},
		Eval: func(ec *EvalCtx) {
			k := ec.Info.OutKind()
			signs := ec.Info.Aux.(string)
			var acc types.Value
			var res types.OpResult
			if signs[0] == '*' {
				var cr types.ConvertResult
				acc, cr = types.Convert(ec.In[0], k)
				res.OutOfRange = cr.OutOfRange
			} else {
				one, _ := types.ParseValue(k, "1")
				var r types.OpResult
				acc, r = types.Div(k, one, ec.In[0])
				res.Merge(r)
			}
			for i := 1; i < len(ec.In); i++ {
				var r types.OpResult
				if signs[i] == '*' {
					acc, r = types.Mul(k, acc, ec.In[i])
				} else {
					acc, r = types.Div(k, acc, ec.In[i])
				}
				res.Merge(r)
			}
			ec.Flags.Merge(res)
			ec.SetOut(acc)
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			signs := gc.Info.Aux.(string)
			if k.IsFloat() {
				// Pure expression: float division by zero yields ±Inf in
				// both engines.
				gc.ForEachOut(func(ix string) {
					var expr string
					if signs[0] == '*' {
						expr = castIn(gc, 0, ix, k)
					} else {
						one := Cast("1.0", types.F64, k)
						expr = binExpr(k, one, "/", castIn(gc, 0, ix, k))
					}
					for i := 1; i < len(gc.In); i++ {
						expr = binExpr(k, expr, string(signs[i]), castIn(gc, i, ix, k))
					}
					gc.L("%s = %s", gc.OutElem(0, ix), expr)
				})
				return nil
			}
			// Integer path: sequential statements with zero-divisor guards
			// (the semantic guard; reporting happens in the generated
			// diagnosis function).
			gc.ForEachOut(func(ix string) {
				out := gc.OutElem(0, ix)
				if signs[0] == '*' {
					gc.L("%s = %s", out, castIn(gc, 0, ix, k))
				} else {
					d := gc.V("d0" + loopSuffix(ix))
					gc.L("%s := %s", d, castIn(gc, 0, ix, k))
					gc.Block(fmt.Sprintf("if %s == 0", d), func() {
						gc.L("%s = 0", out)
					})
					gc.Block("else", func() {
						gc.L("%s = %s(1) / %s", out, k.GoType(), d)
					})
				}
				for i := 1; i < len(gc.In); i++ {
					if signs[i] == '*' {
						gc.L("%s = %s * %s", out, out, castIn(gc, i, ix, k))
						continue
					}
					d := gc.V(fmt.Sprintf("d%d%s", i, loopSuffix(ix)))
					gc.L("%s := %s", d, castIn(gc, i, ix, k))
					gc.Block(fmt.Sprintf("if %s == 0", d), func() {
						gc.L("%s = 0", out)
					})
					gc.Block("else", func() {
						gc.L("%s = %s / %s", out, out, d)
					})
				}
			})
			return nil
		},
	})
}

// loopSuffix disambiguates temporaries declared inside vector loops.
func loopSuffix(ix string) string {
	if ix == "" {
		return ""
	}
	return "v"
}

func registerGain() {
	register(&Spec{
		Type: "Gain", MinIn: 1, MaxIn: 1, NumOut: 1,
		OutKind:  func(in *Info) types.Kind { return in.InKinds[0] },
		OutWidth: maxInWidth,
		Prepare: func(in *Info) error {
			g, err := paramValue(in, "Gain", in.OutKind(), "1")
			if err != nil {
				return err
			}
			in.Aux = g
			return nil
		},
		Eval: func(ec *EvalCtx) {
			v, res := types.Mul(ec.Info.OutKind(), ec.In[0], ec.Info.Aux.(types.Value))
			ec.Flags.Merge(res)
			ec.SetOut(v)
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			g := gc.Info.Aux.(types.Value)
			gc.ForEachOut(func(ix string) {
				gc.L("%s = %s", gc.OutElem(0, ix),
					binExpr(k, castIn(gc, 0, ix, k), "*", g.GoLiteral()))
			})
			return nil
		},
	})
}

func registerBias() {
	register(&Spec{
		Type: "Bias", MinIn: 1, MaxIn: 1, NumOut: 1,
		OutKind:  func(in *Info) types.Kind { return in.InKinds[0] },
		OutWidth: maxInWidth,
		Prepare: func(in *Info) error {
			b, err := paramValue(in, "Bias", in.OutKind(), "0")
			if err != nil {
				return err
			}
			in.Aux = b
			return nil
		},
		Eval: func(ec *EvalCtx) {
			v, res := types.Add(ec.Info.OutKind(), ec.In[0], ec.Info.Aux.(types.Value))
			ec.Flags.Merge(res)
			ec.SetOut(v)
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			b := gc.Info.Aux.(types.Value)
			gc.ForEachOut(func(ix string) {
				gc.L("%s = %s", gc.OutElem(0, ix),
					binExpr(k, castIn(gc, 0, ix, k), "+", b.GoLiteral()))
			})
			return nil
		},
	})
}

func registerAbs() {
	register(&Spec{
		Type: "Abs", MinIn: 1, MaxIn: 1, NumOut: 1,
		OutKind:  func(in *Info) types.Kind { return in.InKinds[0] },
		OutWidth: maxInWidth,
		Eval: func(ec *EvalCtx) {
			v, res := types.Abs(ec.Info.OutKind(), ec.In[0])
			ec.Flags.Merge(res)
			ec.SetOut(v)
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			gc.ForEachOut(func(ix string) {
				out := gc.OutElem(0, ix)
				in := castIn(gc, 0, ix, k)
				switch {
				case k.IsFloat():
					gc.Prog.Import("math")
					gc.L("%s = %s", out, Cast(fmt.Sprintf("math.Abs(float64(%s))", in), types.F64, k))
				case k.IsUnsigned() || k == types.Bool:
					gc.L("%s = %s", out, in)
				default:
					t := gc.V("abs" + loopSuffix(ix))
					gc.L("%s := %s", t, in)
					gc.Block(fmt.Sprintf("if %s < 0", t), func() {
						gc.L("%s = -%s", out, t)
					})
					gc.Block("else", func() {
						gc.L("%s = %s", out, t)
					})
				}
			})
			return nil
		},
	})
}

func registerUnaryMinus() {
	register(&Spec{
		Type: "UnaryMinus", MinIn: 1, MaxIn: 1, NumOut: 1,
		OutKind:  func(in *Info) types.Kind { return in.InKinds[0] },
		OutWidth: maxInWidth,
		Eval: func(ec *EvalCtx) {
			v, res := types.Neg(ec.Info.OutKind(), ec.In[0])
			ec.Flags.Merge(res)
			ec.SetOut(v)
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			gc.ForEachOut(func(ix string) {
				// (0 - x), not -x: keeps -0.0 handling identical to the
				// interpreter's Sub-from-zero definition.
				gc.L("%s = %s", gc.OutElem(0, ix),
					binExpr(k, GoZero(k), "-", castIn(gc, 0, ix, k)))
			})
			return nil
		},
	})
}

var mathOperators = []string{
	"exp", "log", "log10", "log2", "sqrt", "sin", "cos", "tan",
	"asin", "acos", "atan", "sinh", "cosh", "tanh", "reciprocal", "square",
}

func registerMath() {
	register(&Spec{
		Type: "Math", MinIn: 1, MaxIn: 1, NumOut: 1,
		OutWidth:        maxInWidth,
		Operators:       mathOperators,
		DefaultOperator: "exp",
		OutKind:         func(in *Info) types.Kind { return floatOrF64(in.InKinds[0]) },
		Eval:            evalMathUnary,
		Gen:             genMathUnary,
	})
}

func registerSqrt() {
	register(&Spec{
		Type: "Sqrt", MinIn: 1, MaxIn: 1, NumOut: 1,
		OutWidth:        maxInWidth,
		Operators:       []string{"sqrt"},
		DefaultOperator: "sqrt",
		OutKind:         func(in *Info) types.Kind { return floatOrF64(in.InKinds[0]) },
		Eval:            evalMathUnary,
		Gen:             genMathUnary,
	})
}

// floatOrF64 keeps float input kinds and widens everything else to F64.
func floatOrF64(k types.Kind) types.Kind {
	if k.IsFloat() {
		return k
	}
	if k == types.Invalid {
		return types.Invalid
	}
	return types.F64
}

func evalMathUnary(ec *EvalCtx) {
	v, res := types.MathUnary(ec.Info.Operator, ec.Info.OutKind(), ec.In[0])
	ec.Flags.Merge(res)
	ec.SetOut(v)
}

func genMathUnary(gc *GenCtx) error {
	k := gc.Info.OutKind()
	op := gc.Info.Operator
	if op != "reciprocal" && op != "square" {
		gc.Prog.Import("math")
	}
	gc.ForEachOut(func(ix string) {
		x := CastToF64(gc.InElem(0, ix), gc.Info.InKinds[0])
		expr := types.MathGoExpr(op, x)
		if expr == "" {
			gc.Errf("Math: no Go template for operator %q", op)
			return
		}
		gc.L("%s = %s", gc.OutElem(0, ix), Cast(expr, types.F64, k))
	})
	return gc.Err()
}

func registerMinMax() {
	register(&Spec{
		Type: "MinMax", MinIn: 1, MaxIn: 8, NumOut: 1,
		ScalarOnly:      true,
		Operators:       []string{"min", "max"},
		DefaultOperator: "min",
		OutKind:         func(in *Info) types.Kind { return promoteInputs(in) },
		Eval: func(ec *EvalCtx) {
			k := ec.Info.OutKind()
			acc, cr := types.Convert(ec.In[0], k)
			ec.Flags.OutOfRange = ec.Flags.OutOfRange || cr.OutOfRange
			for i := 1; i < len(ec.In); i++ {
				v, r := types.Convert(ec.In[i], k)
				ec.Flags.OutOfRange = ec.Flags.OutOfRange || r.OutOfRange
				c := types.Compare(v, acc)
				if (ec.Info.Operator == "min" && c == -1) || (ec.Info.Operator == "max" && c == 1) {
					acc = v
				}
			}
			ec.SetOut(acc)
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			rel := "<"
			if gc.Info.Operator == "max" {
				rel = ">"
			}
			gc.ForEachOut(func(ix string) {
				out := gc.OutElem(0, ix)
				gc.L("%s = %s", out, castIn(gc, 0, ix, k))
				for i := 1; i < len(gc.In); i++ {
					c := gc.V(fmt.Sprintf("mm%d%s", i, loopSuffix(ix)))
					gc.L("%s := %s", c, castIn(gc, i, ix, k))
					gc.Block(fmt.Sprintf("if %s %s %s", c, rel, out), func() {
						gc.L("%s = %s", out, c)
					})
				}
			})
			return nil
		},
	})
}

func registerSign() {
	register(&Spec{
		Type: "Sign", MinIn: 1, MaxIn: 1, NumOut: 1,
		OutKind:  func(in *Info) types.Kind { return in.InKinds[0] },
		OutWidth: maxInWidth,
		Eval: func(ec *EvalCtx) {
			k := ec.Info.OutKind()
			apply := func(e types.Value) types.Value {
				switch types.Compare(e, types.Zero(e.Kind)) {
				case 1:
					v, _ := types.ParseValue(k, "1")
					return v
				case -1:
					if k.IsUnsigned() || k == types.Bool {
						return types.Zero(k)
					}
					v, _ := types.ParseValue(k, "-1")
					return v
				default:
					return types.Zero(k)
				}
			}
			in := ec.In[0]
			if in.IsVector() {
				out := types.Value{Kind: k, Elems: make([]types.Value, in.Width())}
				for i := range out.Elems {
					out.Elems[i] = apply(in.Elem(i))
				}
				ec.SetOut(out)
				return
			}
			ec.SetOut(apply(in))
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			gc.ForEachOut(func(ix string) {
				out := gc.OutElem(0, ix)
				in := gc.InElem(0, ix)
				zero := GoZero(gc.Info.InKinds[0])
				gc.Block(fmt.Sprintf("if %s > %s", in, zero), func() {
					gc.L("%s = %s(1)", out, k.GoType())
				})
				if k.IsUnsigned() {
					gc.Block("else", func() {
						gc.L("%s = 0", out)
					})
					return
				}
				gc.Block(fmt.Sprintf("else if %s < %s", in, zero), func() {
					gc.L("%s = %s(0) - %s(1)", out, k.GoType(), k.GoType())
				})
				gc.Block("else", func() {
					gc.L("%s = 0", out)
				})
			})
			return nil
		},
	})
}

func registerRounding() {
	register(&Spec{
		Type: "Rounding", MinIn: 1, MaxIn: 1, NumOut: 1,
		OutWidth:        maxInWidth,
		Operators:       []string{"floor", "ceil", "round", "fix"},
		DefaultOperator: "round",
		OutKind:         func(in *Info) types.Kind { return floatOrF64(in.InKinds[0]) },
		Eval:            evalMathUnary,
		Gen:             genMathUnary,
	})
}

func registerPolynomial() {
	register(&Spec{
		Type: "Polynomial", MinIn: 1, MaxIn: 1, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(in *Info) types.Kind { return floatOrF64(in.InKinds[0]) },
		Prepare: func(in *Info) error {
			coeffs, err := paramF64Slice(in, "Coeffs")
			if err != nil {
				return err
			}
			in.Aux = coeffs
			return nil
		},
		Eval: func(ec *EvalCtx) {
			coeffs := ec.Info.Aux.([]float64)
			x := ec.In[0].AsFloat()
			p := coeffs[0]
			for _, c := range coeffs[1:] {
				p = p*x + c
			}
			v, cr := types.Convert(types.FloatVal(types.F64, p), ec.Info.OutKind())
			ec.Flags.OutOfRange = ec.Flags.OutOfRange || cr.OutOfRange
			if math.IsNaN(p) || math.IsInf(p, 0) {
				ec.Flags.NaNOrInf = true
			}
			ec.SetOut(v)
		},
		Gen: func(gc *GenCtx) error {
			coeffs := gc.Info.Aux.([]float64)
			x := CastToF64(gc.In[0], gc.Info.InKinds[0])
			xv := gc.V("px")
			gc.L("%s := %s", xv, x)
			expr := f64Lit(coeffs[0])
			for _, c := range coeffs[1:] {
				expr = fmt.Sprintf("(%s*%s + %s)", expr, xv, f64Lit(c))
			}
			gc.L("%s = %s", gc.Out[0], Cast(expr, types.F64, gc.Info.OutKind()))
			return nil
		},
	})
}

func registerDotProduct() {
	register(&Spec{
		Type: "DotProduct", MinIn: 2, MaxIn: 2, NumOut: 1,
		OutKind:  func(in *Info) types.Kind { return promoteInputs(in) },
		OutWidth: func(in *Info) int { return 1 },
		Eval: func(ec *EvalCtx) {
			k := ec.Info.OutKind()
			a, b := ec.In[0], ec.In[1]
			width := a.Width()
			if b.Width() > width {
				width = b.Width()
			}
			acc := types.Zero(k)
			for i := 0; i < width; i++ {
				prod, r1 := types.Mul(k, a.Elem(i), b.Elem(i))
				var r2 types.OpResult
				acc, r2 = types.Add(k, acc, prod)
				ec.Flags.Merge(r1)
				ec.Flags.Merge(r2)
			}
			ec.SetOut(acc)
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			width := gc.Info.InWidths[0]
			if gc.Info.InWidths[1] > width {
				width = gc.Info.InWidths[1]
			}
			gc.L("%s = %s", gc.Out[0], GoZero(k))
			body := func(ix string) {
				prod := binExpr(k, castIn(gc, 0, ix, k), "*", castIn(gc, 1, ix, k))
				gc.L("%s = %s", gc.Out[0], binExpr(k, gc.Out[0], "+", prod))
			}
			if width <= 1 {
				body("")
			} else {
				gc.Block(fmt.Sprintf("for i := 0; i < %d; i++", width), func() { body("[i]") })
			}
			return nil
		},
	})
}

func registerReduce() {
	type reduceCfg struct {
		typ  string
		op   string // "+" or "*"
		init string
	}
	for _, cfg := range []reduceCfg{
		{"SumOfElements", "+", "0"},
		{"ProductOfElements", "*", "1"},
	} {
		cfg := cfg
		register(&Spec{
			Type: model.ActorType(cfg.typ), MinIn: 1, MaxIn: 1, NumOut: 1,
			OutKind:  func(in *Info) types.Kind { return in.InKinds[0] },
			OutWidth: func(in *Info) int { return 1 },
			Eval: func(ec *EvalCtx) {
				k := ec.Info.OutKind()
				acc, _ := types.ParseValue(k, cfg.init)
				in := ec.In[0]
				for i := 0; i < in.Width(); i++ {
					var r types.OpResult
					if cfg.op == "+" {
						acc, r = types.Add(k, acc, in.Elem(i))
					} else {
						acc, r = types.Mul(k, acc, in.Elem(i))
					}
					ec.Flags.Merge(r)
				}
				ec.SetOut(acc)
			},
			Gen: func(gc *GenCtx) error {
				k := gc.Info.OutKind()
				width := gc.Info.InWidths[0]
				init, _ := types.ParseValue(k, cfg.init)
				gc.L("%s = %s", gc.Out[0], init.GoLiteral())
				body := func(ix string) {
					gc.L("%s = %s", gc.Out[0], binExpr(k, gc.Out[0], cfg.op, castIn(gc, 0, ix, k)))
				}
				if width <= 1 {
					body("")
				} else {
					gc.Block(fmt.Sprintf("for i := 0; i < %d; i++", width), func() { body("[i]") })
				}
				return nil
			},
		})
	}
}

func registerMod() {
	register(&Spec{
		Type: "Mod", MinIn: 2, MaxIn: 2, NumOut: 1,
		OutKind:  func(in *Info) types.Kind { return promoteInputs(in) },
		OutWidth: maxInWidth,
		Eval: func(ec *EvalCtx) {
			v, res := types.Mod(ec.Info.OutKind(), ec.In[0], ec.In[1])
			ec.Flags.Merge(res)
			ec.SetOut(v)
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			gc.ForEachOut(func(ix string) {
				out := gc.OutElem(0, ix)
				a := castIn(gc, 0, ix, k)
				b := castIn(gc, 1, ix, k)
				if k.IsFloat() {
					gc.Prog.Import("math")
					expr := fmt.Sprintf("math.Mod(float64(%s), float64(%s))", a, b)
					gc.L("%s = %s", out, Cast(expr, types.F64, k))
					return
				}
				d := gc.V("md" + loopSuffix(ix))
				gc.L("%s := %s", d, b)
				gc.Block(fmt.Sprintf("if %s == 0", d), func() {
					gc.L("%s = 0", out)
				})
				gc.Block("else", func() {
					gc.L("%s = %s %% %s", out, a, d)
				})
			})
			return nil
		},
	})
}
