package actors

import (
	"testing"

	"accmos/internal/model"
)

// TestRegistryInvariants sweeps every registered spec for structural
// soundness: the contracts the engines and the code generator rely on.
func TestRegistryInvariants(t *testing.T) {
	for _, name := range Types() {
		spec, err := Lookup(model.ActorType(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if spec.Eval == nil {
			t.Errorf("%s: no Eval", name)
		}
		if spec.Gen == nil {
			t.Errorf("%s: no Gen", name)
		}
		if spec.MinIn < 0 || (spec.MaxIn >= 0 && spec.MaxIn < spec.MinIn) {
			t.Errorf("%s: inconsistent port bounds [%d, %d]", name, spec.MinIn, spec.MaxIn)
		}
		if spec.Branch && spec.BranchCount == nil {
			t.Errorf("%s: branch actor without BranchCount", name)
		}
		if !spec.Branch && spec.BranchCount != nil {
			t.Errorf("%s: BranchCount on a non-branch actor", name)
		}
		if spec.Combination && !spec.BooleanOut {
			t.Errorf("%s: combination condition without boolean output", name)
		}
		seen := map[string]bool{}
		for _, op := range spec.Operators {
			if op == "" {
				t.Errorf("%s: empty operator in list", name)
			}
			if seen[op] {
				t.Errorf("%s: duplicate operator %q", name, op)
			}
			seen[op] = true
		}
		if spec.DefaultOperator != "" && !spec.FreeOperator && !spec.operatorAllowed(spec.DefaultOperator) {
			t.Errorf("%s: default operator %q not in operator list", name, spec.DefaultOperator)
		}
		if spec.Stateful && spec.Update == nil && spec.Type != "Counter" {
			// Stateful actors normally commit state in Update; Counter
			// does too, so flag anything without one.
			if spec.Update == nil {
				t.Errorf("%s: stateful actor without Update", name)
			}
		}
		if spec.Update != nil && spec.Init == nil {
			t.Errorf("%s: Update without Init (state would be nil)", name)
		}
	}
}

// TestRegistryEverySpecCompiles instantiates each actor type in a minimal
// model with default-ish wiring and requires elaboration to succeed — a
// smoke gate that no registered type has an unusable default
// configuration.
func TestRegistryEverySpecCompiles(t *testing.T) {
	// Per-type minimal parameters where defaults alone don't elaborate.
	minIn := map[string]int{"BitwiseOperator": 2}
	params := map[string]map[string]string{
		"Selector":           {"Indices": "[1]"},
		"DataTypeConversion": {"OutDataType": "int32"},
		"Lookup1D":           {"BreakPoints": "[0 1]", "Table": "[0 1]"},
		"LookupDirect":       {"Table": "[1 2 3]"},
		"Polynomial":         {"Coeffs": "[1 0]"},
		"DataStoreRead":      {"Store": "s"},
		"DataStoreWrite":     {"Store": "s"},
		"DataStoreMemory":    {"Store": "s"},
	}
	intOnly := map[string]bool{"BitwiseOperator": true, "Shift": true}
	for _, name := range Types() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, _ := Lookup(model.ActorType(name))
			b := model.NewBuilder("REG")
			nIn := spec.MinIn
			if n, ok := minIn[name]; ok {
				nIn = n
			}
			nOut := spec.NumOut
			if spec.VariableOut {
				nOut = 1
			}
			opts := []model.ActorOpt{}
			for k, v := range params[name] {
				opts = append(opts, model.WithParam(k, v))
			}
			b.Add("X", model.ActorType(name), nIn, nOut, opts...)
			srcKind := "double"
			if intOnly[name] {
				srcKind = "int32"
			}
			for i := 0; i < nIn; i++ {
				c := "C" + string(rune('0'+i))
				b.Add(c, "Constant", 0, 1,
					model.WithParam("OutDataType", srcKind), model.WithParam("Value", "1"))
				b.Wire(c, "X", i)
			}
			if name == "DataStoreRead" || name == "DataStoreWrite" {
				b.Add("DSM", "DataStoreMemory", 0, 0, model.WithParam("Store", "s"))
			}
			for o := 0; o < nOut; o++ {
				tn := "T" + string(rune('0'+o))
				b.Add(tn, "Terminator", 1, 0)
				b.Connect("X", o, tn, 0)
			}
			if _, err := Compile(b.MustBuild()); err != nil {
				t.Fatalf("minimal %s model does not elaborate: %v", name, err)
			}
		})
	}
}
