package actors

import "accmos/internal/model"

// Sink actors: signal consumers. Outport feeds the model's external
// outputs (result hashing); the others only matter when placed on a
// collect list for signal monitoring.

func init() {
	register(&Spec{
		Type: "Outport", MinIn: 1, MaxIn: 1, NumOut: 0,
		Eval: func(ec *EvalCtx) {},
		Gen: func(gc *GenCtx) error {
			gc.Prog.BindOutput(gc.Info, gc.In[0])
			return nil
		},
	})

	for _, t := range []model.ActorType{"Terminator", "Scope", "Display", "ToWorkspace"} {
		register(&Spec{
			Type: t, MinIn: 1, MaxIn: 1, NumOut: 0,
			Eval: func(ec *EvalCtx) {},
			Gen: func(gc *GenCtx) error {
				// Reference the input so generated signal variables feeding
				// only this sink do not trip Go's unused-variable check.
				gc.L("_ = %s", gc.In[0])
				return nil
			},
		})
	}
}
