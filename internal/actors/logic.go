package actors

import (
	"fmt"

	"accmos/internal/types"
)

// Logic actors: Boolean combination and relational operators. These carry
// the decision-coverage and MC/DC instrumentation in the paper's Algorithm
// 1 (containBooleanLogic / isCombinationCondition).

func init() {
	registerLogic()
	registerRelational()
	registerCompareToConstant()
	registerCompareToZero()
	registerBitwise()
	registerShift()
}

var logicOps = []string{"AND", "OR", "NAND", "NOR", "XOR", "NXOR", "NOT"}

// logicEval computes the combination result over condition values.
func logicEval(op string, conds []bool) bool {
	switch op {
	case "AND", "NAND":
		out := true
		for _, c := range conds {
			out = out && c
		}
		if op == "NAND" {
			return !out
		}
		return out
	case "OR", "NOR":
		out := false
		for _, c := range conds {
			out = out || c
		}
		if op == "NOR" {
			return !out
		}
		return out
	case "XOR", "NXOR":
		out := false
		for _, c := range conds {
			out = out != c
		}
		if op == "NXOR" {
			return !out
		}
		return out
	case "NOT":
		return !conds[0]
	}
	return false
}

func registerLogic() {
	register(&Spec{
		Type: "Logic", MinIn: 1, MaxIn: 8, NumOut: 1,
		ScalarOnly:      true,
		Operators:       logicOps,
		DefaultOperator: "AND",
		BooleanOut:      true,
		Combination:     true,
		OutKind:         func(*Info) types.Kind { return types.Bool },
		Prepare: func(in *Info) error {
			if in.Operator == "NOT" && in.NumIn() != 1 {
				return fmt.Errorf("Logic NOT takes exactly 1 input, got %d", in.NumIn())
			}
			return nil
		},
		Eval: func(ec *EvalCtx) {
			for _, v := range ec.In {
				ec.Conds = append(ec.Conds, v.AsBool())
			}
			out := logicEval(ec.Info.Operator, ec.Conds)
			ec.setDecision(out)
			ec.SetOut(types.BoolVal(out))
		},
		Gen: func(gc *GenCtx) error {
			op := gc.Info.Operator
			n := len(gc.In)
			// Bind each condition to a variable: reused by the decision
			// expression and by the MC/DC masking instrumentation.
			cv := make([]string, n)
			for i := range gc.In {
				cv[i] = gc.V(fmt.Sprintf("c%d", i))
				gc.L("%s := %s", cv[i], TruthExpr(gc.In[i], gc.Info.InKinds[i]))
			}
			var expr string
			inner, joiner, negate := "", "", false
			switch op {
			case "AND":
				joiner = " && "
			case "NAND":
				joiner, negate = " && ", true
			case "OR":
				joiner = " || "
			case "NOR":
				joiner, negate = " || ", true
			case "XOR":
				joiner = " != "
			case "NXOR":
				joiner, negate = " != ", true
			case "NOT":
				expr = "!" + cv[0]
			}
			if expr == "" {
				for i, v := range cv {
					if i > 0 {
						inner += joiner
					}
					inner += v
				}
				expr = "(" + inner + ")"
				if negate {
					expr = "!" + expr
				}
			}
			gc.L("%s = %s", gc.Out[0], expr)
			gc.DecCov(gc.Out[0])
			genMCDC(gc, op, cv)
			return nil
		},
	})
}

// genMCDC emits masking MC/DC instrumentation: condition i is marked as
// "determines with value v" when, under the masking rule for the operator,
// flipping condition i alone would flip the decision. Two bitmap slots per
// condition: [2i] = determined while true, [2i+1] = determined while false.
func genMCDC(gc *GenCtx, op string, cv []string) {
	if !gc.CoverageOn || gc.MCDCBase < 0 || len(cv) < 2 {
		return
	}
	mark := func(i int, cond string) {
		emit := func() {
			gc.Block(fmt.Sprintf("if %s", cv[i]), func() {
				gc.L("mcdcBitmap[%d] = 1", gc.MCDCBase+2*i)
			})
			gc.Block("else", func() {
				gc.L("mcdcBitmap[%d] = 1", gc.MCDCBase+2*i+1)
			})
		}
		if cond == "" {
			emit()
			return
		}
		gc.Block(fmt.Sprintf("if %s", cond), emit)
	}
	for i := range cv {
		var guard string
		switch op {
		case "AND", "NAND":
			// i determines the outcome when every other condition is true.
			for j := range cv {
				if j == i {
					continue
				}
				if guard != "" {
					guard += " && "
				}
				guard += cv[j]
			}
		case "OR", "NOR":
			// i determines the outcome when every other condition is false.
			for j := range cv {
				if j == i {
					continue
				}
				if guard != "" {
					guard += " && "
				}
				guard += "!" + cv[j]
			}
		case "XOR", "NXOR":
			// every condition always determines the outcome.
			guard = ""
		}
		mark(i, guard)
	}
}

var relationalOps = []string{"==", "~=", "<", "<=", ">", ">="}

// relationalHolds applies a relational operator to a Compare result
// (types.Compare returns -2 for NaN-incomparable pairs).
func relationalHolds(op string, c int) bool {
	switch op {
	case "==":
		return c == 0
	case "~=":
		return c != 0 // NaN != anything, matching IEEE and Go
	case "<":
		return c == -1
	case "<=":
		return c == -1 || c == 0
	case ">":
		return c == 1
	case ">=":
		return c == 1 || c == 0
	}
	return false
}

// relGoOp maps the model operator to the Go operator.
func relGoOp(op string) string {
	if op == "~=" {
		return "!="
	}
	return op
}

func registerRelational() {
	register(&Spec{
		Type: "RelationalOperator", MinIn: 2, MaxIn: 2, NumOut: 1,
		ScalarOnly:      true,
		Operators:       relationalOps,
		DefaultOperator: "==",
		BooleanOut:      true,
		OutKind:         func(*Info) types.Kind { return types.Bool },
		Eval: func(ec *EvalCtx) {
			out := relationalHolds(ec.Info.Operator, types.Compare(ec.In[0], ec.In[1]))
			ec.setDecision(out)
			ec.SetOut(types.BoolVal(out))
		},
		Gen: func(gc *GenCtx) error {
			k := types.Promote(gc.Info.InKinds[0], gc.Info.InKinds[1])
			a := Cast(gc.In[0], gc.Info.InKinds[0], k)
			b := Cast(gc.In[1], gc.Info.InKinds[1], k)
			if k == types.Bool {
				// Booleans only support (in)equality; order relations go
				// through 0/1 integers.
				switch gc.Info.Operator {
				case "==", "~=":
					gc.L("%s = (%s %s %s)", gc.Out[0], a, relGoOp(gc.Info.Operator), b)
				default:
					gc.L("%s = (b2i(%s) %s b2i(%s))", gc.Out[0], a, relGoOp(gc.Info.Operator), b)
				}
			} else {
				gc.L("%s = (%s %s %s)", gc.Out[0], a, relGoOp(gc.Info.Operator), b)
			}
			gc.DecCov(gc.Out[0])
			return nil
		},
	})
}

func registerCompareToConstant() {
	register(&Spec{
		Type: "CompareToConstant", MinIn: 1, MaxIn: 1, NumOut: 1,
		ScalarOnly:      true,
		Operators:       relationalOps,
		DefaultOperator: ">=",
		BooleanOut:      true,
		OutKind:         func(*Info) types.Kind { return types.Bool },
		Prepare: func(in *Info) error {
			k := in.InKinds[0]
			if k == types.Invalid {
				k = types.F64
			}
			c, err := paramValue(in, "Constant", k, "0")
			if err != nil {
				return err
			}
			in.Aux = c
			return nil
		},
		Eval: func(ec *EvalCtx) {
			out := relationalHolds(ec.Info.Operator, types.Compare(ec.In[0], ec.Info.Aux.(types.Value)))
			ec.setDecision(out)
			ec.SetOut(types.BoolVal(out))
		},
		Gen: func(gc *GenCtx) error {
			c := gc.Info.Aux.(types.Value)
			k := types.Promote(gc.Info.InKinds[0], c.Kind)
			a := Cast(gc.In[0], gc.Info.InKinds[0], k)
			b := Cast(c.GoLiteral(), c.Kind, k)
			gc.L("%s = (%s %s %s)", gc.Out[0], a, relGoOp(gc.Info.Operator), b)
			gc.DecCov(gc.Out[0])
			return nil
		},
	})
}

func registerCompareToZero() {
	register(&Spec{
		Type: "CompareToZero", MinIn: 1, MaxIn: 1, NumOut: 1,
		ScalarOnly:      true,
		Operators:       relationalOps,
		DefaultOperator: ">=",
		BooleanOut:      true,
		OutKind:         func(*Info) types.Kind { return types.Bool },
		Eval: func(ec *EvalCtx) {
			out := relationalHolds(ec.Info.Operator, types.Compare(ec.In[0], types.Zero(ec.In[0].Kind)))
			ec.setDecision(out)
			ec.SetOut(types.BoolVal(out))
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.InKinds[0]
			if k == types.Bool {
				switch gc.Info.Operator {
				case "==", "~=":
					gc.L("%s = (%s %s false)", gc.Out[0], gc.In[0], relGoOp(gc.Info.Operator))
				default:
					gc.L("%s = (b2i(%s) %s 0)", gc.Out[0], gc.In[0], relGoOp(gc.Info.Operator))
				}
			} else {
				gc.L("%s = (%s %s %s)", gc.Out[0], gc.In[0], relGoOp(gc.Info.Operator), GoZero(k))
			}
			gc.DecCov(gc.Out[0])
			return nil
		},
	})
}

func registerBitwise() {
	register(&Spec{
		Type: "BitwiseOperator", MinIn: 1, MaxIn: 8, NumOut: 1,
		ScalarOnly:      true,
		Operators:       []string{"AND", "OR", "XOR", "NOT"},
		DefaultOperator: "AND",
		OutKind:         func(in *Info) types.Kind { return in.InKinds[0] },
		Prepare: func(in *Info) error {
			if !in.OutKind().IsInteger() {
				return fmt.Errorf("BitwiseOperator needs an integer type, got %s", in.OutKind())
			}
			if in.Operator == "NOT" && in.NumIn() != 1 {
				return fmt.Errorf("BitwiseOperator NOT takes exactly 1 input, got %d", in.NumIn())
			}
			if in.Operator != "NOT" && in.NumIn() < 2 {
				return fmt.Errorf("BitwiseOperator %s needs >= 2 inputs", in.Operator)
			}
			return nil
		},
		Eval: func(ec *EvalCtx) {
			k := ec.Info.OutKind()
			if ec.Info.Operator == "NOT" {
				v, _ := types.Convert(ec.In[0], k)
				if k.IsSigned() {
					ec.SetOut(types.IntVal(k, ^v.I))
				} else {
					ec.SetOut(types.UintVal(k, ^v.U))
				}
				return
			}
			acc, _ := types.Convert(ec.In[0], k)
			for i := 1; i < len(ec.In); i++ {
				v, _ := types.Convert(ec.In[i], k)
				if k.IsSigned() {
					switch ec.Info.Operator {
					case "AND":
						acc.I &= v.I
					case "OR":
						acc.I |= v.I
					case "XOR":
						acc.I ^= v.I
					}
				} else {
					switch ec.Info.Operator {
					case "AND":
						acc.U &= v.U
					case "OR":
						acc.U |= v.U
					case "XOR":
						acc.U ^= v.U
					}
				}
			}
			ec.SetOut(acc)
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			if gc.Info.Operator == "NOT" {
				gc.L("%s = ^%s", gc.Out[0], castIn(gc, 0, "", k))
				return nil
			}
			goOp := map[string]string{"AND": "&", "OR": "|", "XOR": "^"}[gc.Info.Operator]
			expr := castIn(gc, 0, "", k)
			for i := 1; i < len(gc.In); i++ {
				expr = fmt.Sprintf("(%s %s %s)", expr, goOp, castIn(gc, i, "", k))
			}
			gc.L("%s = %s", gc.Out[0], expr)
			return nil
		},
	})
}

func registerShift() {
	register(&Spec{
		Type: "Shift", MinIn: 1, MaxIn: 1, NumOut: 1,
		ScalarOnly:      true,
		Operators:       []string{"left", "right"},
		DefaultOperator: "left",
		OutKind:         func(in *Info) types.Kind { return in.InKinds[0] },
		Prepare: func(in *Info) error {
			if !in.OutKind().IsInteger() {
				return fmt.Errorf("Shift needs an integer type, got %s", in.OutKind())
			}
			n, err := paramI64(in, "Bits", 1)
			if err != nil {
				return err
			}
			if n < 0 || n > 63 {
				return fmt.Errorf("Shift Bits=%d out of range [0,63]", n)
			}
			in.Aux = n
			return nil
		},
		Eval: func(ec *EvalCtx) {
			k := ec.Info.OutKind()
			n := ec.Info.Aux.(int64)
			v, _ := types.Convert(ec.In[0], k)
			if ec.Info.Operator == "left" {
				if k.IsSigned() {
					shifted := types.WrapInt(k, v.I<<uint(n))
					// Wrap on overflow: shifting back does not restore the
					// value.
					if types.WrapInt(k, shifted>>uint(n)) != v.I {
						ec.Flags.Overflow = true
					}
					ec.SetOut(types.Value{Kind: k, I: shifted})
				} else {
					shifted := types.WrapUint(k, v.U<<uint(n))
					if shifted>>uint(n) != v.U {
						ec.Flags.Overflow = true
					}
					ec.SetOut(types.Value{Kind: k, U: shifted})
				}
				return
			}
			if k.IsSigned() {
				ec.SetOut(types.Value{Kind: k, I: v.I >> uint(n)})
			} else {
				ec.SetOut(types.Value{Kind: k, U: v.U >> uint(n)})
			}
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			n := gc.Info.Aux.(int64)
			op := "<<"
			if gc.Info.Operator == "right" {
				op = ">>"
			}
			gc.L("%s = %s %s %d", gc.Out[0], castIn(gc, 0, "", k), op, n)
			return nil
		},
	})
}
