package harness_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"accmos/internal/actors"
	"accmos/internal/codegen"
	"accmos/internal/harness"
	"accmos/internal/model"
	"accmos/internal/obs"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

func TestWorkerPoolReuseMatchesOneShot(t *testing.T) {
	p := program(t)
	bin, _, err := harness.Build(p, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := harness.NewWorkerPool(1)
	defer pool.Close()

	seeds := []uint64{0, 7, 0xDEAD, 0xBEEF}
	for i, seed := range seeds {
		opts := harness.RunOptions{Steps: 500, SeedXor: seed}
		want, err := harness.Run(bin, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, reused, err := pool.RunContext(context.Background(), bin, opts)
		if err != nil {
			t.Fatal(err)
		}
		if reused != (i > 0) {
			t.Errorf("run %d: reused = %v, want %v", i, reused, i > 0)
		}
		if got.OutputHash != want.OutputHash || got.Steps != want.Steps {
			t.Errorf("seed %#x: pooled run diverged: hash %d/%d steps %d/%d",
				seed, got.OutputHash, want.OutputHash, got.Steps, want.Steps)
		}
		if got.Coverage == nil || want.Coverage == nil {
			t.Fatalf("seed %#x: missing coverage bitmaps", seed)
		}
	}
	st := pool.Stats()
	if st.Spawns != 1 || st.Reuses != 3 || st.Respawns != 0 || st.Artifacts != 1 {
		t.Errorf("stats after 4 sequential runs through one worker: %+v", st)
	}
}

func TestWorkerPoolTimeoutKillsAndRespawns(t *testing.T) {
	p := program(t)
	bin, _, err := harness.Build(p, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := harness.NewWorkerPool(1)
	defer pool.Close()

	start := time.Now()
	_, _, err = pool.RunContext(context.Background(), bin,
		harness.RunOptions{Steps: 1 << 40, Timeout: 250 * time.Millisecond})
	if err == nil {
		t.Fatal("a run past its deadline must surface as an error")
	}
	if !strings.Contains(err.Error(), "250ms timeout") {
		t.Errorf("error must name the deadline: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("kill took %v; want within a few hundred ms of the deadline", elapsed)
	}
	if st := pool.Stats(); st.Respawns != 1 {
		t.Errorf("a killed worker must count as a respawn: %+v", st)
	}

	// The slot must respawn cleanly: the next request gets a fresh worker
	// and a correct result.
	res, reused, err := pool.RunContext(context.Background(), bin, harness.RunOptions{Steps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Error("the replacement worker cannot be a reuse")
	}
	if res.Steps != 100 {
		t.Errorf("replacement worker results: %+v", res)
	}
	if st := pool.Stats(); st.Spawns != 2 {
		t.Errorf("want a second spawn after the kill: %+v", st)
	}
}

func TestWorkerPoolProtocolErrorDestroysWorker(t *testing.T) {
	// A fake worker that answers every request with a non-frame line: the
	// pool must reject the response, kill the process, and count a respawn.
	bin := fakeBinary(t, `
while read line; do
  echo 'this is not a frame'
done
`)
	pool := harness.NewWorkerPool(1)
	defer pool.Close()

	_, _, err := pool.RunContext(context.Background(), bin, harness.RunOptions{Steps: 1})
	if err == nil {
		t.Fatal("a garbage frame must surface as an error")
	}
	if !strings.Contains(err.Error(), "decoding worker frame") {
		t.Errorf("error must name the protocol failure: %v", err)
	}
	if st := pool.Stats(); st.Spawns != 1 || st.Respawns != 1 {
		t.Errorf("stats after a protocol failure: %+v", st)
	}
}

func TestWorkerPoolFrameMismatchRejected(t *testing.T) {
	// A syntactically valid frame carrying the wrong request id must be
	// rejected too — results for some other request can never be
	// attributed to this one.
	bin := fakeBinary(t, `
while read line; do
  echo '{"accmosRun":1,"id":"bogus","result":{"model":"H","engine":"AccMoS","steps":1}}'
done
`)
	pool := harness.NewWorkerPool(1)
	defer pool.Close()

	_, _, err := pool.RunContext(context.Background(), bin, harness.RunOptions{Steps: 1})
	if err == nil || !strings.Contains(err.Error(), "worker frame mismatch") {
		t.Fatalf("mismatched frame id must be rejected: %v", err)
	}
}

func TestWorkerPoolWorkerErrorFrame(t *testing.T) {
	// An error frame is a clean protocol exchange, but the run still fails
	// and the worker is not trusted again.
	bin := fakeBinary(t, `
read line
id=$(echo "$line" | sed 's/.*"id":"\([^"]*\)".*/\1/')
echo "{\"accmosRun\":1,\"id\":\"$id\",\"error\":\"simulated failure\"}"
`)
	pool := harness.NewWorkerPool(1)
	defer pool.Close()

	_, _, err := pool.RunContext(context.Background(), bin, harness.RunOptions{Steps: 1})
	if err == nil || !strings.Contains(err.Error(), "simulated failure") {
		t.Fatalf("worker error frame must surface: %v", err)
	}
	if st := pool.Stats(); st.Respawns != 1 {
		t.Errorf("an error frame must still retire the worker: %+v", st)
	}
}

func TestWorkerPoolClosedRejects(t *testing.T) {
	pool := harness.NewWorkerPool(2)
	pool.Close()
	_, _, err := pool.RunContext(context.Background(), "/nonexistent/bin", harness.RunOptions{Steps: 1})
	if err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("a closed pool must reject requests: %v", err)
	}
	// Close is idempotent.
	pool.Close()
}

func TestWorkerPoolHeartbeatTimeline(t *testing.T) {
	p := program(t)
	bin, _, err := harness.Build(p, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := harness.NewWorkerPool(1)
	defer pool.Close()

	// Two back-to-back heartbeat runs through one warm worker: each must
	// get its own run-tagged timeline ending in its own final snapshot —
	// no leakage of the first run's snapshots into the second.
	for round := 0; round < 2; round++ {
		var viaCallback []obs.Snapshot
		res, _, err := pool.RunContext(context.Background(), bin, harness.RunOptions{
			Steps:     3_000_000,
			Heartbeat: time.Millisecond,
			Progress:  func(s obs.Snapshot) { viaCallback = append(viaCallback, s) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Steps != 3_000_000 {
			t.Fatalf("round %d: results corrupted: %+v", round, res)
		}
		if len(res.Timeline) < 2 {
			t.Fatalf("round %d: want >=2 snapshots (ticks plus final), got %d", round, len(res.Timeline))
		}
		last := res.Timeline[len(res.Timeline)-1]
		if !last.Final || last.Steps != res.Steps {
			t.Errorf("round %d: final snapshot: %+v", round, last)
		}
		runID := res.Timeline[0].Run
		if runID == "" {
			t.Fatalf("round %d: pooled snapshots must carry the request id", round)
		}
		for i, s := range res.Timeline {
			if s.Run != runID {
				t.Errorf("round %d: snapshot %d tagged %q, want %q (cross-run leakage)", round, i, s.Run, runID)
			}
		}
		if len(viaCallback) != len(res.Timeline) {
			t.Errorf("round %d: callback saw %d snapshots, timeline has %d", round, len(viaCallback), len(res.Timeline))
		}
	}
	if st := pool.Stats(); st.Spawns != 1 || st.Reuses != 1 {
		t.Errorf("both rounds should share one worker: %+v", st)
	}
}

func TestWorkerPoolConcurrentRuns(t *testing.T) {
	p := program(t)
	bin, _, err := harness.Build(p, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := harness.NewWorkerPool(2)
	defer pool.Close()

	// Baseline hashes per seed from one-shot mode.
	want := map[uint64]uint64{}
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, seed := range seeds {
		res, err := harness.Run(bin, harness.RunOptions{Steps: 300, SeedXor: seed})
		if err != nil {
			t.Fatal(err)
		}
		want[seed] = res.OutputHash
	}

	type outcome struct {
		seed uint64
		hash uint64
		err  error
	}
	ch := make(chan outcome, len(seeds))
	for _, seed := range seeds {
		go func(seed uint64) {
			res, _, err := pool.RunContext(context.Background(), bin, harness.RunOptions{Steps: 300, SeedXor: seed})
			if err != nil {
				ch <- outcome{seed: seed, err: err}
				return
			}
			ch <- outcome{seed: seed, hash: res.OutputHash}
		}(seed)
	}
	for range seeds {
		o := <-ch
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.hash != want[o.seed] {
			t.Errorf("seed %d: concurrent pooled run diverged", o.seed)
		}
	}
	st := pool.Stats()
	if st.Spawns > 2 {
		t.Errorf("pool of 2 spawned %d workers", st.Spawns)
	}
	if st.Spawns+st.Reuses != int64(len(seeds)) {
		t.Errorf("spawns+reuses should account for every run: %+v", st)
	}
}

func TestWorkerPoolBudgetMode(t *testing.T) {
	// A sub-millisecond budget must clamp to 1ms rather than fall back to
	// the embedded default step count (same contract as one-shot mode).
	m := model.NewBuilder("WB").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", "2")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Chain("In", "G", "Out").
		MustBuild()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := codegen.Generate(c, codegen.Options{
		TestCases: testcase.NewRandomSet(1, 1, -1, 1), DefaultSteps: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	bin, _, err := harness.Build(p, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := harness.NewWorkerPool(1)
	defer pool.Close()
	res, _, err := pool.RunContext(context.Background(), bin, harness.RunOptions{
		Budget: 500 * time.Microsecond, Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 || res.Steps == 1<<40 {
		t.Errorf("budget handling broken in serve mode: steps = %d", res.Steps)
	}
}

func TestBuildContextPreCanceled(t *testing.T) {
	p := program(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := harness.BuildContext(ctx, p, t.TempDir(), nil)
	if err == nil {
		t.Fatal("a canceled context must abort the build")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error should wrap the context error: %v", err)
	}
	if !strings.Contains(err.Error(), "H") {
		t.Errorf("error should name the model: %v", err)
	}
}

func TestBuildContextDeadlineAbortsInFlightCompile(t *testing.T) {
	p := program(t)
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := harness.BuildContext(ctx, p, t.TempDir(), nil)
	elapsed := time.Since(start)
	if err == nil {
		// The compiler beat the deadline on this machine; the pre-canceled
		// test above still covers the abort path.
		t.Skip("compile finished before the 25ms deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error should wrap the deadline: %v", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("abort took %v after a 25ms deadline", elapsed)
	}
}

func TestRunDecodeErrorReportsByteOffset(t *testing.T) {
	bin := fakeBinary(t, `echo '[1,2,3]'`)
	_, err := harness.Run(bin, harness.RunOptions{Steps: 1})
	if err == nil {
		t.Fatal("a non-object result document must fail to decode")
	}
	if !strings.Contains(err.Error(), "decoding results at byte offset") {
		t.Errorf("decode failure must report the byte offset: %v", err)
	}
}
