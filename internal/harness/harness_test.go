package harness_test

import (
	"strings"
	"testing"
	"time"

	"accmos/internal/actors"
	"accmos/internal/codegen"
	"accmos/internal/harness"
	"accmos/internal/model"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

func program(t *testing.T) *codegen.Program {
	t.Helper()
	m := model.NewBuilder("H").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", "2")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Chain("In", "G", "Out").
		MustBuild()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := codegen.Generate(c, codegen.Options{
		Coverage: true, TestCases: testcase.NewRandomSet(1, 1, -1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildAndRun(t *testing.T) {
	p := program(t)
	res, err := harness.BuildAndRun(p, t.TempDir(), harness.RunOptions{Steps: 123})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 123 || res.Engine != "AccMoS" || res.Model != "H" {
		t.Errorf("results: %+v", res)
	}
	if res.CompileNanos <= 0 {
		t.Error("compile time not recorded")
	}
	if res.Coverage == nil || len(res.Coverage.Actor) != 3 {
		t.Errorf("coverage bitmaps: %+v", res.Coverage)
	}
}

func TestRunReusesBinary(t *testing.T) {
	p := program(t)
	bin, compileTime, err := harness.Build(p, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if compileTime <= 0 {
		t.Error("no compile time")
	}
	r1, err := harness.Run(bin, harness.RunOptions{Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := harness.Run(bin, harness.RunOptions{Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r1.OutputHash != r2.OutputHash {
		t.Error("same binary, same flags, different outputs")
	}
}

func TestRunBudgetMode(t *testing.T) {
	p := program(t)
	bin, _, err := harness.Build(p, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.Run(bin, harness.RunOptions{Budget: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Error("budget mode executed no steps")
	}
}

func TestBuildSurfacesCompilerErrors(t *testing.T) {
	p := &codegen.Program{Model: "BAD", Source: "package main\nfunc main() { undefined() }\n"}
	_, _, err := harness.Build(p, t.TempDir())
	if err == nil {
		t.Fatal("broken source must fail")
	}
	if !strings.Contains(err.Error(), "undefined") || !strings.Contains(err.Error(), "generated source") {
		t.Errorf("error lacks diagnostics: %v", err)
	}
}

func TestRunMissingBinary(t *testing.T) {
	if _, err := harness.Run("/nonexistent/bin", harness.RunOptions{Steps: 1}); err == nil {
		t.Fatal("missing binary must error")
	}
}
