package harness_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"accmos/internal/actors"
	"accmos/internal/codegen"
	"accmos/internal/harness"
	"accmos/internal/model"
	"accmos/internal/obs"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

func program(t *testing.T) *codegen.Program {
	t.Helper()
	m := model.NewBuilder("H").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", "2")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Chain("In", "G", "Out").
		MustBuild()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := codegen.Generate(c, codegen.Options{
		Coverage: true, TestCases: testcase.NewRandomSet(1, 1, -1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildAndRun(t *testing.T) {
	p := program(t)
	res, err := harness.BuildAndRun(p, t.TempDir(), harness.RunOptions{Steps: 123})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 123 || res.Engine != "AccMoS" || res.Model != "H" {
		t.Errorf("results: %+v", res)
	}
	if res.CompileNanos <= 0 {
		t.Error("compile time not recorded")
	}
	if res.Coverage == nil || len(res.Coverage.Actor) != 3 {
		t.Errorf("coverage bitmaps: %+v", res.Coverage)
	}
}

func TestRunReusesBinary(t *testing.T) {
	p := program(t)
	bin, compileTime, err := harness.Build(p, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if compileTime <= 0 {
		t.Error("no compile time")
	}
	r1, err := harness.Run(bin, harness.RunOptions{Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := harness.Run(bin, harness.RunOptions{Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r1.OutputHash != r2.OutputHash {
		t.Error("same binary, same flags, different outputs")
	}
}

func TestRunBudgetMode(t *testing.T) {
	p := program(t)
	bin, _, err := harness.Build(p, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.Run(bin, harness.RunOptions{Budget: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Error("budget mode executed no steps")
	}
}

func TestBuildSurfacesCompilerErrors(t *testing.T) {
	p := &codegen.Program{Model: "BAD", Source: "package main\nfunc main() { undefined() }\n"}
	_, _, err := harness.Build(p, t.TempDir())
	if err == nil {
		t.Fatal("broken source must fail")
	}
	if !strings.Contains(err.Error(), "undefined") || !strings.Contains(err.Error(), "generated source") {
		t.Errorf("error lacks diagnostics: %v", err)
	}
}

func TestRunMissingBinary(t *testing.T) {
	if _, err := harness.Run("/nonexistent/bin", harness.RunOptions{Steps: 1}); err == nil {
		t.Fatal("missing binary must error")
	}
}

func TestRunHeartbeatTimeline(t *testing.T) {
	p := program(t)
	bin, _, err := harness.Build(p, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var viaCallback []obs.Snapshot
	res, err := harness.Run(bin, harness.RunOptions{
		Steps:     5_000_000,
		Heartbeat: time.Millisecond,
		Progress:  func(s obs.Snapshot) { viaCallback = append(viaCallback, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 5_000_000 || res.Coverage == nil {
		t.Fatalf("heartbeats corrupted the results: %+v", res)
	}
	if len(res.Timeline) < 2 {
		t.Fatalf("want >=2 snapshots (ticks plus final), got %d", len(res.Timeline))
	}
	if len(viaCallback) != len(res.Timeline) {
		t.Errorf("callback saw %d snapshots, timeline has %d", len(viaCallback), len(res.Timeline))
	}
	last := res.Timeline[len(res.Timeline)-1]
	if !last.Final || last.Steps != res.Steps {
		t.Errorf("final snapshot: %+v", last)
	}
	for i, s := range res.Timeline {
		if s.Model != "H" || s.Engine != "AccMoS" {
			t.Errorf("snapshot %d misattributed: %+v", i, s)
		}
		if s.Coverage < 0 || s.Coverage > 100 {
			t.Errorf("snapshot %d coverage out of range: %v", i, s.Coverage)
		}
		if i == 0 {
			continue
		}
		prev := res.Timeline[i-1]
		if s.Steps < prev.Steps || s.Coverage < prev.Coverage || s.ElapsedNanos < prev.ElapsedNanos {
			t.Errorf("snapshot %d regressed: %+v -> %+v", i, prev, s)
		}
	}
}

func TestRunHeartbeatOffByDefault(t *testing.T) {
	p := program(t)
	bin, _, err := harness.Build(p, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.Run(bin, harness.RunOptions{Steps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) != 0 {
		t.Errorf("heartbeat must be opt-in, got %d snapshots", len(res.Timeline))
	}
}

// fakeBinary writes an executable shell script standing in for a
// generated simulation binary, to exercise Run's stderr handling.
func fakeBinary(t *testing.T, script string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fake_sim")
	if err := os.WriteFile(path, []byte("#!/bin/sh\n"+script), 0o755); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunDecodesResultsWithInterleavedStderr(t *testing.T) {
	bin := fakeBinary(t, `
echo 'warming up' >&2
echo '{"accmosHB":1,"model":"F","engine":"AccMoS","steps":100,"elapsedNanos":5,"stepsPerSec":1,"coverage":50,"diags":0}' >&2
echo 'midway note' >&2
echo '{"accmosHB":1,"model":"F","engine":"AccMoS","steps":200,"elapsedNanos":9,"stepsPerSec":1,"coverage":75,"diags":1,"final":true}' >&2
echo '{"model":"F","engine":"AccMoS","steps":200}'
`)
	res, err := harness.Run(bin, harness.RunOptions{Steps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "F" || res.Steps != 200 {
		t.Errorf("results: %+v", res)
	}
	if len(res.Timeline) != 2 {
		t.Fatalf("want 2 heartbeats in the timeline, got %+v", res.Timeline)
	}
	if res.Timeline[0].Coverage != 50 || !res.Timeline[1].Final || res.Timeline[1].Diags != 1 {
		t.Errorf("timeline misdecoded: %+v", res.Timeline)
	}
}

func TestRunErrorCarriesDiagnosticTailNotHeartbeats(t *testing.T) {
	var sb strings.Builder
	for i := 1; i <= 30; i++ {
		fmt.Fprintf(&sb, "echo 'diag line %02d' >&2\n", i)
		sb.WriteString(`echo '{"accmosHB":1,"steps":1}' >&2` + "\n")
	}
	sb.WriteString("exit 1\n")
	bin := fakeBinary(t, sb.String())
	_, err := harness.Run(bin, harness.RunOptions{Steps: 1})
	if err == nil {
		t.Fatal("exit 1 must surface as an error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "diag line 30") || !strings.Contains(msg, "diag line 11") {
		t.Errorf("error lacks the stderr tail: %v", msg)
	}
	if strings.Contains(msg, "diag line 10") {
		t.Errorf("error should keep only the last 20 diagnostic lines: %v", msg)
	}
	if strings.Contains(msg, "accmosHB") {
		t.Errorf("heartbeats leaked into the run error: %v", msg)
	}
}
