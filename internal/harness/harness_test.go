package harness_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"accmos/internal/actors"
	"accmos/internal/codegen"
	"accmos/internal/harness"
	"accmos/internal/model"
	"accmos/internal/obs"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

func program(t *testing.T) *codegen.Program {
	t.Helper()
	m := model.NewBuilder("H").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", "2")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Chain("In", "G", "Out").
		MustBuild()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := codegen.Generate(c, codegen.Options{
		Coverage: true, TestCases: testcase.NewRandomSet(1, 1, -1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildAndRun(t *testing.T) {
	p := program(t)
	res, err := harness.BuildAndRun(p, t.TempDir(), harness.RunOptions{Steps: 123})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 123 || res.Engine != "AccMoS" || res.Model != "H" {
		t.Errorf("results: %+v", res)
	}
	if res.CompileNanos <= 0 {
		t.Error("compile time not recorded")
	}
	if res.Coverage == nil || len(res.Coverage.Actor) != 3 {
		t.Errorf("coverage bitmaps: %+v", res.Coverage)
	}
}

func TestRunReusesBinary(t *testing.T) {
	p := program(t)
	bin, compileTime, err := harness.Build(p, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if compileTime <= 0 {
		t.Error("no compile time")
	}
	r1, err := harness.Run(bin, harness.RunOptions{Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := harness.Run(bin, harness.RunOptions{Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r1.OutputHash != r2.OutputHash {
		t.Error("same binary, same flags, different outputs")
	}
}

func TestRunBudgetMode(t *testing.T) {
	p := program(t)
	bin, _, err := harness.Build(p, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.Run(bin, harness.RunOptions{Budget: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Error("budget mode executed no steps")
	}
}

func TestBuildSurfacesCompilerErrors(t *testing.T) {
	p := &codegen.Program{Model: "BAD", Source: "package main\nfunc main() { undefined() }\n"}
	_, _, err := harness.Build(p, t.TempDir())
	if err == nil {
		t.Fatal("broken source must fail")
	}
	if !strings.Contains(err.Error(), "undefined") || !strings.Contains(err.Error(), "generated source") {
		t.Errorf("error lacks diagnostics: %v", err)
	}
}

func TestRunMissingBinary(t *testing.T) {
	if _, err := harness.Run("/nonexistent/bin", harness.RunOptions{Steps: 1}); err == nil {
		t.Fatal("missing binary must error")
	}
}

func TestRunHeartbeatTimeline(t *testing.T) {
	p := program(t)
	bin, _, err := harness.Build(p, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var viaCallback []obs.Snapshot
	res, err := harness.Run(bin, harness.RunOptions{
		Steps:     5_000_000,
		Heartbeat: time.Millisecond,
		Progress:  func(s obs.Snapshot) { viaCallback = append(viaCallback, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 5_000_000 || res.Coverage == nil {
		t.Fatalf("heartbeats corrupted the results: %+v", res)
	}
	if len(res.Timeline) < 2 {
		t.Fatalf("want >=2 snapshots (ticks plus final), got %d", len(res.Timeline))
	}
	if len(viaCallback) != len(res.Timeline) {
		t.Errorf("callback saw %d snapshots, timeline has %d", len(viaCallback), len(res.Timeline))
	}
	last := res.Timeline[len(res.Timeline)-1]
	if !last.Final || last.Steps != res.Steps {
		t.Errorf("final snapshot: %+v", last)
	}
	for i, s := range res.Timeline {
		if s.Model != "H" || s.Engine != "AccMoS" {
			t.Errorf("snapshot %d misattributed: %+v", i, s)
		}
		if s.Coverage < 0 || s.Coverage > 100 {
			t.Errorf("snapshot %d coverage out of range: %v", i, s.Coverage)
		}
		if i == 0 {
			continue
		}
		prev := res.Timeline[i-1]
		if s.Steps < prev.Steps || s.Coverage < prev.Coverage || s.ElapsedNanos < prev.ElapsedNanos {
			t.Errorf("snapshot %d regressed: %+v -> %+v", i, prev, s)
		}
	}
}

func TestRunHeartbeatOffByDefault(t *testing.T) {
	p := program(t)
	bin, _, err := harness.Build(p, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.Run(bin, harness.RunOptions{Steps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) != 0 {
		t.Errorf("heartbeat must be opt-in, got %d snapshots", len(res.Timeline))
	}
}

// fakeBinary writes an executable shell script standing in for a
// generated simulation binary, to exercise Run's stderr handling.
func fakeBinary(t *testing.T, script string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fake_sim")
	if err := os.WriteFile(path, []byte("#!/bin/sh\n"+script), 0o755); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunDecodesResultsWithInterleavedStderr(t *testing.T) {
	bin := fakeBinary(t, `
echo 'warming up' >&2
echo '{"accmosHB":1,"model":"F","engine":"AccMoS","steps":100,"elapsedNanos":5,"stepsPerSec":1,"coverage":50,"diags":0}' >&2
echo 'midway note' >&2
echo '{"accmosHB":1,"model":"F","engine":"AccMoS","steps":200,"elapsedNanos":9,"stepsPerSec":1,"coverage":75,"diags":1,"final":true}' >&2
echo '{"model":"F","engine":"AccMoS","steps":200}'
`)
	res, err := harness.Run(bin, harness.RunOptions{Steps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "F" || res.Steps != 200 {
		t.Errorf("results: %+v", res)
	}
	if len(res.Timeline) != 2 {
		t.Fatalf("want 2 heartbeats in the timeline, got %+v", res.Timeline)
	}
	if res.Timeline[0].Coverage != 50 || !res.Timeline[1].Final || res.Timeline[1].Diags != 1 {
		t.Errorf("timeline misdecoded: %+v", res.Timeline)
	}
}

// hungBinary stands in for a wedged generated program: the shell spawns a
// child that sleeps far past any test deadline, so only a process-group
// kill can unblock the stderr drain.
func hungBinary(t *testing.T) string {
	t.Helper()
	return fakeBinary(t, "echo wedged >&2\nsleep 100 &\nwait\n")
}

func TestRunTimeoutKillsHungBinary(t *testing.T) {
	bin := hungBinary(t)
	start := time.Now()
	_, err := harness.Run(bin, harness.RunOptions{Steps: 1, Timeout: 250 * time.Millisecond})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("a hung binary must surface as an error")
	}
	if !strings.Contains(err.Error(), "250ms timeout") {
		t.Errorf("error must name the deadline: %v", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("kill took %v; want within a few hundred ms of the 250ms deadline", elapsed)
	}
}

func TestRunContextCancelKillsBinary(t *testing.T) {
	bin := hungBinary(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := harness.RunContext(ctx, bin, harness.RunOptions{Steps: 1})
	if err == nil {
		t.Fatal("cancellation must surface as an error")
	}
	if !strings.Contains(err.Error(), "context canceled") {
		t.Errorf("error must name the cancellation: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("kill took %v after a 100ms cancel", elapsed)
	}
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := harness.RunContext(ctx, "/nonexistent/bin", harness.RunOptions{Steps: 1}); err == nil {
		t.Fatal("a cancelled context must fail before starting the binary")
	}
}

func TestRunSurvivesOversizedStderrLine(t *testing.T) {
	// A diagnostic line beyond the 1 MiB scanner cap must not leave the
	// pipe undrained (which would deadlock cmd.Wait): the run still
	// completes and decodes its results.
	bin := fakeBinary(t, `
head -c 2097152 /dev/zero | tr '\0' 'x' >&2
echo >&2
echo '{"model":"F","engine":"AccMoS","steps":7}'
`)
	res, err := harness.Run(bin, harness.RunOptions{Steps: 7})
	if err != nil {
		t.Fatalf("oversized stderr line broke a successful run: %v", err)
	}
	if res.Steps != 7 {
		t.Errorf("results corrupted: %+v", res)
	}
}

func TestRunErrorSurfacesStderrScanError(t *testing.T) {
	bin := fakeBinary(t, `
echo 'before the flood' >&2
head -c 2097152 /dev/zero | tr '\0' 'x' >&2
echo >&2
exit 1
`)
	_, err := harness.Run(bin, harness.RunOptions{Steps: 1})
	if err == nil {
		t.Fatal("exit 1 must surface as an error")
	}
	if !strings.Contains(err.Error(), "stderr scan aborted") {
		t.Errorf("error must surface the scanner failure: %v", err)
	}
}

func TestRunSubMillisecondBudgetClamped(t *testing.T) {
	// The embedded default step count is enormous: if a 500µs budget were
	// dropped (the old -budget-ms=0 bug), the binary would fall back to
	// it and this test would time out instead of finishing in ~1ms.
	m := model.NewBuilder("HB").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", "2")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Chain("In", "G", "Out").
		MustBuild()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := codegen.Generate(c, codegen.Options{
		TestCases: testcase.NewRandomSet(1, 1, -1, 1), DefaultSteps: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	bin, _, err := harness.Build(p, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.Run(bin, harness.RunOptions{
		Budget:  500 * time.Microsecond,
		Timeout: 30 * time.Second, // backstop so a regression fails fast
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Error("clamped budget executed no steps")
	}
	if res.Steps == 1<<40 {
		t.Error("budget was dropped: the run used the default step count")
	}
}

func TestSharedWorkDirDistinctPrograms(t *testing.T) {
	// m.1 and m_1 sanitize to the same name; the content-hash suffix must
	// keep their sources and binaries apart in one shared WorkDir.
	src := func(steps string) string {
		return `package main
import "fmt"
func main() { fmt.Println(` + "`" + `{"model":"X","engine":"AccMoS","steps":` + steps + `}` + "`" + `) }
`
	}
	dir := t.TempDir()
	pa := &codegen.Program{Model: "m.1", Source: src("1")}
	pb := &codegen.Program{Model: "m_1", Source: src("2")}
	binA, _, err := harness.Build(pa, dir)
	if err != nil {
		t.Fatal(err)
	}
	binB, _, err := harness.Build(pb, dir)
	if err != nil {
		t.Fatal(err)
	}
	if binA == binB {
		t.Fatalf("distinct programs share the binary path %s", binA)
	}
	// Both binaries must still exist and behave as their own program —
	// i.e. the second build must not have overwritten the first.
	resA, err := harness.Run(binA, harness.RunOptions{Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := harness.Run(binB, harness.RunOptions{Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resA.Steps != 1 || resB.Steps != 2 {
		t.Errorf("binaries crossed: steps %d / %d, want 1 / 2", resA.Steps, resB.Steps)
	}
}

func TestRunErrorCarriesDiagnosticTailNotHeartbeats(t *testing.T) {
	var sb strings.Builder
	for i := 1; i <= 30; i++ {
		fmt.Fprintf(&sb, "echo 'diag line %02d' >&2\n", i)
		sb.WriteString(`echo '{"accmosHB":1,"steps":1}' >&2` + "\n")
	}
	sb.WriteString("exit 1\n")
	bin := fakeBinary(t, sb.String())
	_, err := harness.Run(bin, harness.RunOptions{Steps: 1})
	if err == nil {
		t.Fatal("exit 1 must surface as an error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "diag line 30") || !strings.Contains(msg, "diag line 11") {
		t.Errorf("error lacks the stderr tail: %v", msg)
	}
	if strings.Contains(msg, "diag line 10") {
		t.Errorf("error should keep only the last 20 diagnostic lines: %v", msg)
	}
	if strings.Contains(msg, "accmosHB") {
		t.Errorf("heartbeats leaked into the run error: %v", msg)
	}
}

func TestRunErrorsCarryModelAndSuiteLabel(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such-binary")
	_, err := harness.Run(missing, harness.RunOptions{Model: "CSEV", Suite: 3})
	if err == nil {
		t.Fatal("running a missing binary must fail")
	}
	for _, want := range []string{"CSEV", "suite 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}

	// Without labels the error falls back to the binary path alone.
	_, err = harness.Run(missing, harness.RunOptions{})
	if err == nil || !strings.Contains(err.Error(), missing) {
		t.Fatalf("unlabeled error should carry the path: %v", err)
	}
}

func TestRunContextCanceledErrorIsLabeled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := harness.RunContext(ctx, "/nonexistent", harness.RunOptions{Model: "M7"})
	if err == nil || !strings.Contains(err.Error(), "M7") {
		t.Fatalf("pre-canceled run error should name the model: %v", err)
	}
}
