package harness

import (
	"container/list"
	"fmt"
	"os"
	"sync"
	"time"

	"accmos/internal/codegen"
	"accmos/internal/obs"
)

// BuildCache memoises compiled generated programs by content hash
// (codegen.Program.Hash covers the model structure, every codegen option
// and the embedded test cases), so repeated Simulate/Sweep/experiment
// calls on the same model reuse the binary instead of re-invoking
// `go build`. Safe for concurrent use; concurrent requests for the same
// program block on one build.
//
// A cache can be bounded with SetLimit: once more than limit programs
// are resident, the least-recently-used completed entry (and its on-disk
// artifacts) is evicted — the correctness requirement for a long-lived
// process like the accmosd daemon, where an unbounded cache is a slow
// leak of heap and disk. Hit/miss/eviction counters are exposed through
// Stats for the daemon's /metrics endpoint.
type BuildCache struct {
	mu      sync.Mutex
	dir     string
	owned   bool // dir was created (and may be deleted) by the cache
	limit   int  // max resident entries; 0 = unbounded
	entries map[string]*cacheEntry
	order   *list.List // LRU order: front = most recently used

	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	mu      sync.Mutex
	done    bool
	bin     string
	src     string
	compile time.Duration
	err     error

	elem *list.Element // position in BuildCache.order; value is the key
}

// CacheStats is a point-in-time snapshot of a cache's counters. Hits
// count Build calls served by an existing binary (including waiters that
// blocked on another goroutine's in-flight build); Misses count calls
// that had to compile; Evictions count entries dropped by the LRU bound.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Limit     int   `json:"limit"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewBuildCache creates a cache rooted at dir; with dir == "" a private
// temp directory is created on first use and lives for the process.
func NewBuildCache(dir string) *BuildCache {
	return &BuildCache{dir: dir, entries: make(map[string]*cacheEntry), order: list.New()}
}

// DefaultCache is the process-wide cache the facade uses for callers that
// did not pin a WorkDir.
var DefaultCache = NewBuildCache("")

// SetLimit bounds the cache to at most n resident programs (0 restores
// the unbounded default). Shrinking below the current population evicts
// least-recently-used entries immediately.
func (c *BuildCache) SetLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = n
	c.evictOverLimitLocked()
}

// Stats snapshots the cache counters.
func (c *BuildCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Limit:     c.limit,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// evictOverLimitLocked drops least-recently-used entries until the
// population fits the limit. Entries whose build is still in flight (or
// whose result is being read) hold their own lock and are skipped — they
// are by definition recently used. Caller holds c.mu.
func (c *BuildCache) evictOverLimitLocked() {
	if c.limit <= 0 {
		return
	}
	for elem := c.order.Back(); elem != nil && len(c.entries) > c.limit; {
		prev := elem.Prev()
		key := elem.Value.(string)
		e := c.entries[key]
		if e != nil && e.mu.TryLock() {
			if e.done {
				if e.bin != "" {
					os.Remove(e.bin)
				}
				if e.src != "" {
					os.Remove(e.src)
				}
				delete(c.entries, key)
				c.order.Remove(elem)
				c.evictions++
			}
			e.mu.Unlock()
		}
		elem = prev
	}
}

// Build returns a compiled binary for p, building at most once per
// program content. hit reports whether an existing binary was reused;
// compileTime is the original build's duration either way (so amortised
// callers still see the one-time cost). Compile errors are cached too —
// the same source fails the same way.
func (c *BuildCache) Build(p *codegen.Program, tr *obs.Tracer) (bin string, compileTime time.Duration, hit bool, err error) {
	key := p.Hash()
	c.mu.Lock()
	if c.dir == "" {
		dir, mkErr := os.MkdirTemp("", "accmos-cache-")
		if mkErr != nil {
			c.mu.Unlock()
			return "", 0, false, fmt.Errorf("harness: build cache: %w", mkErr)
		}
		c.dir = dir
		c.owned = true
	}
	dir := c.dir
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
		e.elem = c.order.PushFront(key)
		c.evictOverLimitLocked()
	} else {
		c.order.MoveToFront(e.elem)
	}
	c.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done && e.err == nil {
		// Revalidate: the binary may have been swept away (temp cleaners,
		// tests removing the cache dir); rebuild instead of returning a
		// dangling path.
		if _, statErr := os.Stat(e.bin); statErr == nil {
			// A hit still records the (near-zero) compile span so a
			// traced pipeline keeps its one-compile-per-run shape.
			tr.Start("compile").End()
			c.count(&c.hits)
			return e.bin, e.compile, true, nil
		}
		e.done = false
	}
	if e.done {
		c.count(&c.hits)
		return "", 0, true, e.err
	}
	e.bin, e.compile, e.err = BuildTraced(p, dir, tr)
	e.src = srcPathFor(p, dir)
	e.done = true
	c.count(&c.misses)
	return e.bin, e.compile, false, e.err
}

func (c *BuildCache) count(field *int64) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

// Dir returns the cache's artifact directory ("" until the first build
// when no directory was pinned).
func (c *BuildCache) Dir() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dir
}

// Remove drops every cached entry and deletes the artifact directory if
// the cache created it itself (a caller-pinned directory is left alone).
// The cache stays usable: the next Build recreates the directory.
// Counters survive, so Stats keeps reporting lifetime totals.
func (c *BuildCache) Remove() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*cacheEntry)
	c.order.Init()
	if c.owned && c.dir != "" {
		os.RemoveAll(c.dir)
		c.dir = ""
		c.owned = false
	}
}
