package harness

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"accmos/internal/codegen"
	"accmos/internal/obs"
)

// BuildCache memoises compiled generated programs by content hash
// (codegen.Program.Hash covers the model structure, every codegen option
// and the embedded test cases), so repeated Simulate/Sweep/experiment
// calls on the same model reuse the binary instead of re-invoking
// `go build`. Safe for concurrent use; concurrent requests for the same
// program block on one build.
//
// A cache can be bounded with SetLimit: once more than limit programs
// are resident, the least-recently-used completed entry (and its on-disk
// artifacts) is evicted — the correctness requirement for a long-lived
// process like the accmosd daemon, where an unbounded cache is a slow
// leak of heap and disk. Hit/miss/eviction counters are exposed through
// Stats for the daemon's /metrics endpoint.
type BuildCache struct {
	mu      sync.Mutex
	dir     string
	owned   bool // dir was created (and may be deleted) by the cache
	limit   int  // max resident entries; 0 = unbounded
	entries map[string]*cacheEntry
	order   *list.List // LRU order: front = most recently used

	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	mu      sync.Mutex
	done    bool
	bin     string
	src     string
	compile time.Duration
	err     error

	elem *list.Element // position in BuildCache.order; value is the key
}

// CacheStats is a point-in-time snapshot of a cache's counters. Hits
// count Build calls served by an existing binary (including waiters that
// blocked on another goroutine's in-flight build); Misses count calls
// that had to compile; Evictions count entries dropped by the LRU bound.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Limit     int   `json:"limit"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewBuildCache creates a cache rooted at dir; with dir == "" a private
// temp directory is created on first use and lives for the process.
func NewBuildCache(dir string) *BuildCache {
	return &BuildCache{dir: dir, entries: make(map[string]*cacheEntry), order: list.New()}
}

// DefaultCache is the process-wide cache the facade uses for callers that
// did not pin a WorkDir.
var DefaultCache = NewBuildCache("")

// SetLimit bounds the cache to at most n resident programs (0 restores
// the unbounded default). Shrinking below the current population evicts
// least-recently-used entries immediately.
func (c *BuildCache) SetLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = n
	c.evictOverLimitLocked()
}

// Stats snapshots the cache counters.
func (c *BuildCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Limit:     c.limit,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// evictOverLimitLocked drops least-recently-used entries until the
// population fits the limit. Entries whose build is still in flight (or
// whose result is being read) hold their own lock and are skipped — they
// are by definition recently used. Caller holds c.mu.
func (c *BuildCache) evictOverLimitLocked() {
	if c.limit <= 0 {
		return
	}
	for elem := c.order.Back(); elem != nil && len(c.entries) > c.limit; {
		prev := elem.Prev()
		key := elem.Value.(string)
		e := c.entries[key]
		if e != nil && e.mu.TryLock() {
			if e.done {
				if e.bin != "" {
					os.Remove(e.bin)
				}
				if e.src != "" {
					os.Remove(e.src)
				}
				delete(c.entries, key)
				c.order.Remove(elem)
				c.evictions++
			}
			e.mu.Unlock()
		}
		elem = prev
	}
}

// Build returns a compiled binary for p, building at most once per
// program content. hit reports whether an existing binary was reused;
// compileTime is the original build's duration either way (so amortised
// callers still see the one-time cost). Compile errors are cached too —
// the same source fails the same way.
func (c *BuildCache) Build(p *codegen.Program, tr *obs.Tracer) (bin string, compileTime time.Duration, hit bool, err error) {
	key := p.Hash()
	c.mu.Lock()
	if c.dir == "" {
		dir, mkErr := os.MkdirTemp("", "accmos-cache-")
		if mkErr != nil {
			c.mu.Unlock()
			return "", 0, false, fmt.Errorf("harness: build cache: %w", mkErr)
		}
		c.dir = dir
		c.owned = true
	}
	dir := c.dir
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
		e.elem = c.order.PushFront(key)
		c.evictOverLimitLocked()
	} else {
		c.order.MoveToFront(e.elem)
	}
	c.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done && e.err == nil {
		// Revalidate: the binary may have been swept away (temp cleaners,
		// tests removing the cache dir); rebuild instead of returning a
		// dangling path.
		if _, statErr := os.Stat(e.bin); statErr == nil {
			// A hit still records the (near-zero) compile span so a
			// traced pipeline keeps its one-compile-per-run shape.
			tr.Start("compile").End()
			c.count(&c.hits)
			return e.bin, e.compile, true, nil
		}
		e.done = false
	}
	if e.done {
		c.count(&c.hits)
		return "", 0, true, e.err
	}
	e.bin, e.compile, e.err = BuildTraced(p, dir, tr)
	e.src = srcPathFor(p, dir)
	e.done = true
	c.count(&c.misses)
	return e.bin, e.compile, false, e.err
}

func (c *BuildCache) count(field *int64) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

// Has reports whether key holds a completed, successful build whose
// binary is still on disk — i.e. whether Export would succeed right now.
// In-flight builds report false: a fleet coordinator probing for transfer
// sources must not block on someone else's compile.
func (c *BuildCache) Has(key string) bool {
	c.mu.Lock()
	e := c.entries[key]
	c.mu.Unlock()
	if e == nil {
		return false
	}
	if !e.mu.TryLock() {
		return false
	}
	defer e.mu.Unlock()
	if !e.done || e.err != nil || e.bin == "" {
		return false
	}
	_, statErr := os.Stat(e.bin)
	return statErr == nil
}

// Export returns the compiled binary cached under key together with the
// SHA-256 of its bytes — the integrity check a receiving Import verifies.
// This is the fleet layer's artifact-shipping primitive: a model compiled
// on one node travels to any other node by content hash, so it is
// compiled everywhere once it is compiled anywhere.
func (c *BuildCache) Export(key string) (data []byte, digest string, err error) {
	c.mu.Lock()
	e := c.entries[key]
	if e != nil {
		c.order.MoveToFront(e.elem)
	}
	c.mu.Unlock()
	if e == nil {
		return nil, "", fmt.Errorf("harness: export %s: not cached", shortKey(key))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.done || e.err != nil || e.bin == "" {
		return nil, "", fmt.Errorf("harness: export %s: no successful build cached", shortKey(key))
	}
	data, err = os.ReadFile(e.bin)
	if err != nil {
		return nil, "", fmt.Errorf("harness: export %s: %w", shortKey(key), err)
	}
	sum := sha256.Sum256(data)
	return data, hex.EncodeToString(sum[:]), nil
}

// Import installs an externally compiled binary under key after verifying
// that the bytes hash to digest (SHA-256 hex). A mismatch — truncation or
// corruption in transit — is rejected without touching the cache. The
// installed entry behaves exactly like a locally built one: subsequent
// Build calls for the same program are cache hits, and the LRU bound and
// eviction apply. Importing over an existing successful entry is a no-op.
func (c *BuildCache) Import(key, digest string, data []byte) error {
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != digest {
		return fmt.Errorf("harness: import %s: digest mismatch: got %s want %s (corrupt transfer rejected)",
			shortKey(key), shortKey(got), shortKey(digest))
	}
	c.mu.Lock()
	if c.dir == "" {
		dir, mkErr := os.MkdirTemp("", "accmos-cache-")
		if mkErr != nil {
			c.mu.Unlock()
			return fmt.Errorf("harness: import: %w", mkErr)
		}
		c.dir = dir
		c.owned = true
	}
	dir := c.dir
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
		e.elem = c.order.PushFront(key)
		c.evictOverLimitLocked()
	} else {
		c.order.MoveToFront(e.elem)
	}
	c.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done && e.err == nil && e.bin != "" {
		if _, statErr := os.Stat(e.bin); statErr == nil {
			return nil // already resident and healthy
		}
	}
	bin := filepath.Join(dir, "sim_import_"+shortKey(key))
	if err := os.WriteFile(bin, data, 0o755); err != nil {
		return fmt.Errorf("harness: import %s: %w", shortKey(key), err)
	}
	e.bin = bin
	e.src = ""
	e.compile = 0
	e.err = nil
	e.done = true
	return nil
}

// shortKey truncates a content hash for error messages and file names.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// Dir returns the cache's artifact directory ("" until the first build
// when no directory was pinned).
func (c *BuildCache) Dir() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dir
}

// Remove drops every cached entry and deletes the artifact directory if
// the cache created it itself (a caller-pinned directory is left alone).
// The cache stays usable: the next Build recreates the directory.
// Counters survive, so Stats keeps reporting lifetime totals.
func (c *BuildCache) Remove() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*cacheEntry)
	c.order.Init()
	if c.owned && c.dir != "" {
		os.RemoveAll(c.dir)
		c.dir = ""
		c.owned = false
	}
}
