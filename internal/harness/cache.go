package harness

import (
	"fmt"
	"os"
	"sync"
	"time"

	"accmos/internal/codegen"
	"accmos/internal/obs"
)

// BuildCache memoises compiled generated programs by content hash
// (codegen.Program.Hash covers the model structure, every codegen option
// and the embedded test cases), so repeated Simulate/Sweep/experiment
// calls on the same model reuse the binary instead of re-invoking
// `go build`. Safe for concurrent use; concurrent requests for the same
// program block on one build.
type BuildCache struct {
	mu      sync.Mutex
	dir     string
	owned   bool // dir was created (and may be deleted) by the cache
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	mu      sync.Mutex
	done    bool
	bin     string
	compile time.Duration
	err     error
}

// NewBuildCache creates a cache rooted at dir; with dir == "" a private
// temp directory is created on first use and lives for the process.
func NewBuildCache(dir string) *BuildCache {
	return &BuildCache{dir: dir, entries: make(map[string]*cacheEntry)}
}

// DefaultCache is the process-wide cache the facade uses for callers that
// did not pin a WorkDir.
var DefaultCache = NewBuildCache("")

// Build returns a compiled binary for p, building at most once per
// program content. hit reports whether an existing binary was reused;
// compileTime is the original build's duration either way (so amortised
// callers still see the one-time cost). Compile errors are cached too —
// the same source fails the same way.
func (c *BuildCache) Build(p *codegen.Program, tr *obs.Tracer) (bin string, compileTime time.Duration, hit bool, err error) {
	key := p.Hash()
	c.mu.Lock()
	if c.dir == "" {
		dir, mkErr := os.MkdirTemp("", "accmos-cache-")
		if mkErr != nil {
			c.mu.Unlock()
			return "", 0, false, fmt.Errorf("harness: build cache: %w", mkErr)
		}
		c.dir = dir
		c.owned = true
	}
	dir := c.dir
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done && e.err == nil {
		// Revalidate: the binary may have been swept away (temp cleaners,
		// tests removing the cache dir); rebuild instead of returning a
		// dangling path.
		if _, statErr := os.Stat(e.bin); statErr == nil {
			// A hit still records the (near-zero) compile span so a
			// traced pipeline keeps its one-compile-per-run shape.
			tr.Start("compile").End()
			return e.bin, e.compile, true, nil
		}
		e.done = false
	}
	if e.done {
		return "", 0, true, e.err
	}
	e.bin, e.compile, e.err = BuildTraced(p, dir, tr)
	e.done = true
	return e.bin, e.compile, false, e.err
}

// Dir returns the cache's artifact directory ("" until the first build
// when no directory was pinned).
func (c *BuildCache) Dir() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dir
}

// Remove drops every cached entry and deletes the artifact directory if
// the cache created it itself (a caller-pinned directory is left alone).
// The cache stays usable: the next Build recreates the directory.
func (c *BuildCache) Remove() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*cacheEntry)
	if c.owned && c.dir != "" {
		os.RemoveAll(c.dir)
		c.dir = ""
		c.owned = false
	}
}
