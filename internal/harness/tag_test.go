package harness

import (
	"strings"
	"testing"

	"accmos/internal/codegen"
)

// TestArtifactTagCarriesOptLevel pins the on-disk half of the cache-key
// regression: an -O0 and an -O1 build of one model must land in distinct
// artifacts even when their generated source is byte-identical.
func TestArtifactTagCarriesOptLevel(t *testing.T) {
	src := "package main\nfunc main() {}\n"
	plain := &codegen.Program{Model: "M", Source: src}
	o0 := &codegen.Program{Model: "M", Source: src, Opt: "O0"}
	o1 := &codegen.Program{Model: "M", Source: src, Opt: "O1"}

	t0, t1, tp := artifactTag(o0), artifactTag(o1), artifactTag(plain)
	if t0 == t1 || t0 == tp || t1 == tp {
		t.Fatalf("artifact tags must be pairwise distinct: %q %q %q", t0, t1, tp)
	}
	if !strings.Contains(t0, "_O0_") || !strings.Contains(t1, "_O1_") {
		t.Errorf("tags should spell the level for on-disk inspection: %q %q", t0, t1)
	}
}
