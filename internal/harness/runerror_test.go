package harness_test

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"accmos/internal/harness"
)

// TestRunErrorStructuredOnTimeout: a timed-out run must surface as a
// *RunError carrying the machine-readable reason, the correlation ID and
// the deadline, while Error() keeps the familiar message and errors.Is
// still sees the deadline cause.
func TestRunErrorStructuredOnTimeout(t *testing.T) {
	bin := hungBinary(t)
	_, err := harness.Run(bin, harness.RunOptions{
		Steps: 1, Timeout: 250 * time.Millisecond,
		Model: "HT", RunID: "r-timeout-test",
	})
	if err == nil {
		t.Fatal("a hung binary must surface as an error")
	}
	var re *harness.RunError
	if !errors.As(err, &re) {
		t.Fatalf("timeout error is not a *RunError: %T %v", err, err)
	}
	if re.Reason != harness.ReasonTimeout {
		t.Errorf("reason %q, want %q", re.Reason, harness.ReasonTimeout)
	}
	if re.Corr != "r-timeout-test" || re.Model != "HT" || re.Bin != bin {
		t.Errorf("identity fields: %+v", re)
	}
	if re.Timeout != 250*time.Millisecond {
		t.Errorf("timeout field %v, want 250ms", re.Timeout)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("errors.Is(err, DeadlineExceeded) must hold through RunError")
	}
	if !strings.Contains(err.Error(), "250ms timeout") {
		t.Errorf("message lost the legacy form: %v", err)
	}
}

// TestRunErrorStructuredOnExit: a non-zero exit carries the exit code,
// the stderr tail as structured lines, and the stamped heartbeat tail.
func TestRunErrorStructuredOnExit(t *testing.T) {
	bin := fakeBinary(t, `
echo 'boom: stack trace line' >&2
echo '{"accmosHB":1,"model":"X","engine":"AccMoS","steps":7}' >&2
exit 3
`)
	_, err := harness.Run(bin, harness.RunOptions{Steps: 1, RunID: "r-exit-test"})
	if err == nil {
		t.Fatal("exit 3 must surface as an error")
	}
	var re *harness.RunError
	if !errors.As(err, &re) {
		t.Fatalf("exit error is not a *RunError: %T %v", err, err)
	}
	if re.Reason != harness.ReasonExit {
		t.Errorf("reason %q, want %q", re.Reason, harness.ReasonExit)
	}
	if re.ExitCode != 3 {
		t.Errorf("exit code %d, want 3", re.ExitCode)
	}
	found := false
	for _, line := range re.StderrTail {
		if strings.Contains(line, "boom: stack trace line") {
			found = true
		}
	}
	if !found {
		t.Errorf("stderr tail missing the diagnostic: %q", re.StderrTail)
	}
	if len(re.Heartbeats) != 1 || re.Heartbeats[0].Steps != 7 {
		t.Fatalf("heartbeat tail: %+v", re.Heartbeats)
	}
	if re.Heartbeats[0].Corr != "r-exit-test" {
		t.Errorf("heartbeat corr %q, want the run ID", re.Heartbeats[0].Corr)
	}
}

// TestRunErrorHeartbeatTailBounded: only the last few heartbeats ride on
// the error, however long the run was.
func TestRunErrorHeartbeatTailBounded(t *testing.T) {
	var sb strings.Builder
	for i := 1; i <= 40; i++ {
		sb.WriteString(`echo '{"accmosHB":1,"steps":` + strconv.Itoa(i) + `}' >&2` + "\n")
	}
	sb.WriteString("exit 1\n")
	_, err := harness.Run(fakeBinary(t, sb.String()), harness.RunOptions{Steps: 1})
	var re *harness.RunError
	if !errors.As(err, &re) {
		t.Fatalf("not a RunError: %v", err)
	}
	if len(re.Heartbeats) != 8 {
		t.Fatalf("heartbeat tail has %d entries, want 8", len(re.Heartbeats))
	}
	if first, last := re.Heartbeats[0].Steps, re.Heartbeats[7].Steps; first != 33 || last != 40 {
		t.Errorf("tail spans steps %d..%d, want 33..40", first, last)
	}
}

// TestWorkerRunErrorStructuredOnTimeout: the pooled serve-mode path
// produces the same structured errors as spawn-per-run.
func TestWorkerRunErrorStructuredOnTimeout(t *testing.T) {
	bin := hungBinary(t)
	pool := harness.NewWorkerPool(1)
	defer pool.Close()
	_, _, err := pool.RunContext(context.Background(), bin, harness.RunOptions{
		Steps: 1, Timeout: 250 * time.Millisecond, RunID: "j-000009",
	})
	if err == nil {
		t.Fatal("a hung worker must surface as an error")
	}
	var re *harness.RunError
	if !errors.As(err, &re) {
		t.Fatalf("worker timeout is not a *RunError: %T %v", err, err)
	}
	if re.Reason != harness.ReasonTimeout || re.Corr != "j-000009" {
		t.Errorf("reason %q corr %q, want timeout / j-000009", re.Reason, re.Corr)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("errors.Is(err, DeadlineExceeded) must hold for worker timeouts")
	}
	st := pool.Stats()
	if st.Respawns != 1 {
		t.Errorf("killed worker not counted as respawn: %+v", st)
	}
}

// The batch lane protocol has more ways to go wrong than a single-run
// frame — a header promising lanes that never arrive, a lane count that
// contradicts the request, lanes that aren't result documents, a worker
// dying mid-batch — and each must surface as a structured *RunError with
// the right machine-readable reason, not a hang or a misattributed lane.

// TestWorkerBatchTruncatedLanes: the worker answers the batch header but
// exits before writing its promised lanes. The lane read hits EOF and the
// exchange must fail as a protocol error naming the missing lane.
func TestWorkerBatchTruncatedLanes(t *testing.T) {
	bin := fakeBinary(t, `
read line
id=$(echo "$line" | sed 's/.*"id":"\([^"]*\)".*/\1/')
echo "{\"accmosRun\":1,\"id\":\"$id\",\"laneCount\":2}"
`)
	pool := harness.NewWorkerPool(1)
	defer pool.Close()
	_, _, _, err := pool.RunBatch(context.Background(), bin,
		harness.RunOptions{Steps: 4, RunID: "b-trunc"}, []uint64{1, 2})
	if err == nil {
		t.Fatal("a truncated batch must surface as an error")
	}
	var re *harness.RunError
	if !errors.As(err, &re) {
		t.Fatalf("truncated batch is not a *RunError: %T %v", err, err)
	}
	if re.Reason != harness.ReasonProtocol {
		t.Errorf("reason %q, want %q", re.Reason, harness.ReasonProtocol)
	}
	if !strings.Contains(err.Error(), "reading batch lane 1 of 2") {
		t.Errorf("error must name the missing lane: %v", err)
	}
	st := pool.Stats()
	if st.Respawns != 1 {
		t.Errorf("a worker that truncates a batch must be retired: %+v", st)
	}
	if st.Batches != 0 {
		t.Errorf("a failed batch must not count as dispatched: %+v", st)
	}
}

// TestWorkerBatchLaneCountMismatch: a syntactically clean batch whose
// lane count contradicts the request's seed count can never be
// attributed lane-by-lane; it must be rejected before any decode.
func TestWorkerBatchLaneCountMismatch(t *testing.T) {
	bin := fakeBinary(t, `
read line
id=$(echo "$line" | sed 's/.*"id":"\([^"]*\)".*/\1/')
echo "{\"accmosRun\":1,\"id\":\"$id\",\"laneCount\":3}"
echo '{}'
echo '{}'
echo '{}'
`)
	pool := harness.NewWorkerPool(1)
	defer pool.Close()
	_, _, _, err := pool.RunBatch(context.Background(), bin,
		harness.RunOptions{Steps: 4}, []uint64{1, 2})
	var re *harness.RunError
	if !errors.As(err, &re) || re.Reason != harness.ReasonProtocol {
		t.Fatalf("lane-count mismatch must be a protocol RunError: %v", err)
	}
	if !strings.Contains(err.Error(), "batch frame mismatch (3 lanes for 2 seeds)") {
		t.Errorf("error must name both counts: %v", err)
	}
}

// TestWorkerBatchBadLaneDecode: the lane count matches but a lane isn't a
// result document — a decode failure, distinct from protocol breakage,
// pointing at the offending lane.
func TestWorkerBatchBadLaneDecode(t *testing.T) {
	bin := fakeBinary(t, `
read line
id=$(echo "$line" | sed 's/.*"id":"\([^"]*\)".*/\1/')
echo "{\"accmosRun\":1,\"id\":\"$id\",\"laneCount\":2}"
echo '{"model":"X","engine":"AccMoS","steps":4,"execNanos":1,"outputHash":7,"diagTotal":0}'
echo 'not a result document'
`)
	pool := harness.NewWorkerPool(1)
	defer pool.Close()
	_, _, _, err := pool.RunBatch(context.Background(), bin,
		harness.RunOptions{Steps: 4}, []uint64{1, 2})
	var re *harness.RunError
	if !errors.As(err, &re) || re.Reason != harness.ReasonDecode {
		t.Fatalf("a garbage lane must be a decode RunError: %v", err)
	}
	if !strings.Contains(err.Error(), "decoding batch lane 1") {
		t.Errorf("error must point at the bad lane: %v", err)
	}
}

// TestWorkerBatchErrorFrame: a worker can refuse a batch with an error
// frame; that's a clean exchange, but the batch fails as a worker error
// and the worker is retired.
func TestWorkerBatchErrorFrame(t *testing.T) {
	bin := fakeBinary(t, `
read line
id=$(echo "$line" | sed 's/.*"id":"\([^"]*\)".*/\1/')
echo "{\"accmosRun\":1,\"id\":\"$id\",\"error\":\"lanes exploded\"}"
`)
	pool := harness.NewWorkerPool(1)
	defer pool.Close()
	_, _, _, err := pool.RunBatch(context.Background(), bin,
		harness.RunOptions{Steps: 4}, []uint64{1, 2})
	var re *harness.RunError
	if !errors.As(err, &re) || re.Reason != harness.ReasonWorker {
		t.Fatalf("an error frame must be a worker-error RunError: %v", err)
	}
	if !strings.Contains(err.Error(), "lanes exploded") {
		t.Errorf("error must carry the worker's message: %v", err)
	}
	if st := pool.Stats(); st.Respawns != 1 {
		t.Errorf("an error frame must still retire the worker: %+v", st)
	}
}

// TestWorkerBatchDeathMidBatchCarriesStderr: a worker that crashes
// between lanes must fail the batch AND preserve its dying words in the
// structured stderr tail — the forensic trail for "which lane killed it".
func TestWorkerBatchDeathMidBatchCarriesStderr(t *testing.T) {
	bin := fakeBinary(t, `
read line
id=$(echo "$line" | sed 's/.*"id":"\([^"]*\)".*/\1/')
echo 'boom: lane 2 panicked' >&2
echo "{\"accmosRun\":1,\"id\":\"$id\",\"laneCount\":3}"
echo '{"model":"X","engine":"AccMoS","steps":4,"execNanos":1,"outputHash":7,"diagTotal":0}'
sleep 0.3
exit 2
`)
	pool := harness.NewWorkerPool(1)
	defer pool.Close()
	_, _, _, err := pool.RunBatch(context.Background(), bin,
		harness.RunOptions{Steps: 4, RunID: "b-death"}, []uint64{1, 2, 3})
	var re *harness.RunError
	if !errors.As(err, &re) || re.Reason != harness.ReasonProtocol {
		t.Fatalf("mid-batch death must be a protocol RunError: %v", err)
	}
	if re.Corr != "b-death" {
		t.Errorf("correlation id %q, want b-death", re.Corr)
	}
	found := false
	for _, line := range re.StderrTail {
		if strings.Contains(line, "boom: lane 2 panicked") {
			found = true
		}
	}
	if !found {
		t.Errorf("stderr tail missing the crash diagnostic: %q", re.StderrTail)
	}
}

// TestSpawnBatchTruncatedDoc: the spawn-per-batch path (-batch-seeds)
// reads a header plus N lane lines from a one-shot process; a document
// that ends early must name the missing lane rather than decode garbage.
func TestSpawnBatchTruncatedDoc(t *testing.T) {
	bin := fakeBinary(t, `
echo '{"accmosBatch":1,"laneCount":2}'
echo '{"model":"X","engine":"AccMoS","steps":4,"execNanos":1,"outputHash":7,"diagTotal":0}'
`)
	_, _, err := harness.RunBatch(context.Background(), bin,
		harness.RunOptions{Steps: 4}, []uint64{1, 2})
	if err == nil || !strings.Contains(err.Error(), "reading batch lane 2 of 2") {
		t.Fatalf("truncated batch document must name the missing lane: %v", err)
	}
}

// TestSpawnBatchHeaderMismatch: a spawn batch header promising a lane
// count other than the requested seed count is rejected up front.
func TestSpawnBatchHeaderMismatch(t *testing.T) {
	bin := fakeBinary(t, `
echo '{"accmosBatch":1,"laneCount":5}'
echo '{}'
echo '{}'
echo '{}'
echo '{}'
echo '{}'
`)
	_, _, err := harness.RunBatch(context.Background(), bin,
		harness.RunOptions{Steps: 4}, []uint64{1, 2})
	if err == nil || !strings.Contains(err.Error(), "batch document mismatch (marker 1, 5 lanes for 2 seeds)") {
		t.Fatalf("header mismatch must be rejected: %v", err)
	}
}
