package harness_test

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"accmos/internal/harness"
)

// TestRunErrorStructuredOnTimeout: a timed-out run must surface as a
// *RunError carrying the machine-readable reason, the correlation ID and
// the deadline, while Error() keeps the familiar message and errors.Is
// still sees the deadline cause.
func TestRunErrorStructuredOnTimeout(t *testing.T) {
	bin := hungBinary(t)
	_, err := harness.Run(bin, harness.RunOptions{
		Steps: 1, Timeout: 250 * time.Millisecond,
		Model: "HT", RunID: "r-timeout-test",
	})
	if err == nil {
		t.Fatal("a hung binary must surface as an error")
	}
	var re *harness.RunError
	if !errors.As(err, &re) {
		t.Fatalf("timeout error is not a *RunError: %T %v", err, err)
	}
	if re.Reason != harness.ReasonTimeout {
		t.Errorf("reason %q, want %q", re.Reason, harness.ReasonTimeout)
	}
	if re.Corr != "r-timeout-test" || re.Model != "HT" || re.Bin != bin {
		t.Errorf("identity fields: %+v", re)
	}
	if re.Timeout != 250*time.Millisecond {
		t.Errorf("timeout field %v, want 250ms", re.Timeout)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("errors.Is(err, DeadlineExceeded) must hold through RunError")
	}
	if !strings.Contains(err.Error(), "250ms timeout") {
		t.Errorf("message lost the legacy form: %v", err)
	}
}

// TestRunErrorStructuredOnExit: a non-zero exit carries the exit code,
// the stderr tail as structured lines, and the stamped heartbeat tail.
func TestRunErrorStructuredOnExit(t *testing.T) {
	bin := fakeBinary(t, `
echo 'boom: stack trace line' >&2
echo '{"accmosHB":1,"model":"X","engine":"AccMoS","steps":7}' >&2
exit 3
`)
	_, err := harness.Run(bin, harness.RunOptions{Steps: 1, RunID: "r-exit-test"})
	if err == nil {
		t.Fatal("exit 3 must surface as an error")
	}
	var re *harness.RunError
	if !errors.As(err, &re) {
		t.Fatalf("exit error is not a *RunError: %T %v", err, err)
	}
	if re.Reason != harness.ReasonExit {
		t.Errorf("reason %q, want %q", re.Reason, harness.ReasonExit)
	}
	if re.ExitCode != 3 {
		t.Errorf("exit code %d, want 3", re.ExitCode)
	}
	found := false
	for _, line := range re.StderrTail {
		if strings.Contains(line, "boom: stack trace line") {
			found = true
		}
	}
	if !found {
		t.Errorf("stderr tail missing the diagnostic: %q", re.StderrTail)
	}
	if len(re.Heartbeats) != 1 || re.Heartbeats[0].Steps != 7 {
		t.Fatalf("heartbeat tail: %+v", re.Heartbeats)
	}
	if re.Heartbeats[0].Corr != "r-exit-test" {
		t.Errorf("heartbeat corr %q, want the run ID", re.Heartbeats[0].Corr)
	}
}

// TestRunErrorHeartbeatTailBounded: only the last few heartbeats ride on
// the error, however long the run was.
func TestRunErrorHeartbeatTailBounded(t *testing.T) {
	var sb strings.Builder
	for i := 1; i <= 40; i++ {
		sb.WriteString(`echo '{"accmosHB":1,"steps":` + strconv.Itoa(i) + `}' >&2` + "\n")
	}
	sb.WriteString("exit 1\n")
	_, err := harness.Run(fakeBinary(t, sb.String()), harness.RunOptions{Steps: 1})
	var re *harness.RunError
	if !errors.As(err, &re) {
		t.Fatalf("not a RunError: %v", err)
	}
	if len(re.Heartbeats) != 8 {
		t.Fatalf("heartbeat tail has %d entries, want 8", len(re.Heartbeats))
	}
	if first, last := re.Heartbeats[0].Steps, re.Heartbeats[7].Steps; first != 33 || last != 40 {
		t.Errorf("tail spans steps %d..%d, want 33..40", first, last)
	}
}

// TestWorkerRunErrorStructuredOnTimeout: the pooled serve-mode path
// produces the same structured errors as spawn-per-run.
func TestWorkerRunErrorStructuredOnTimeout(t *testing.T) {
	bin := hungBinary(t)
	pool := harness.NewWorkerPool(1)
	defer pool.Close()
	_, _, err := pool.RunContext(context.Background(), bin, harness.RunOptions{
		Steps: 1, Timeout: 250 * time.Millisecond, RunID: "j-000009",
	})
	if err == nil {
		t.Fatal("a hung worker must surface as an error")
	}
	var re *harness.RunError
	if !errors.As(err, &re) {
		t.Fatalf("worker timeout is not a *RunError: %T %v", err, err)
	}
	if re.Reason != harness.ReasonTimeout || re.Corr != "j-000009" {
		t.Errorf("reason %q corr %q, want timeout / j-000009", re.Reason, re.Corr)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("errors.Is(err, DeadlineExceeded) must hold for worker timeouts")
	}
	st := pool.Stats()
	if st.Respawns != 1 {
		t.Errorf("killed worker not counted as respawn: %+v", st)
	}
}
