package harness

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"sync"
	"time"

	"accmos/internal/coverage"
	"accmos/internal/obs"
	"accmos/internal/simresult"
)

// serveRequest is one request sent to a serve-mode worker — a single
// NDJSON line on its stdin. Keep in sync with the serveRequest decoder in
// internal/codegen's generated runtime. Steps and BudgetMS both bound a
// run when both are positive (whichever is reached first wins). Batch
// set to 1 with SeedXors turns the request into a batched lane run.
type serveRequest struct {
	Batch       int      `json:"accmosBatch,omitempty"`
	ID          string   `json:"id"`
	Steps       int64    `json:"steps"`
	BudgetMS    int64    `json:"budgetMs"`
	SeedXor     uint64   `json:"seedXor"`
	SeedXors    []uint64 `json:"seedXors,omitempty"`
	HeartbeatMS int64    `json:"heartbeatMs"`
	// Corr is the run's correlation ID, carried for log joinability;
	// generated decoders that predate it ignore the field.
	Corr string `json:"corr,omitempty"`
}

// serveFrame is the response header line on a worker's stdout: exactly
// one per request, carrying the simresult document (single runs), an
// error, or — for batch requests — the count of raw result lines that
// follow the frame, one per lane.
type serveFrame struct {
	Marker    int             `json:"accmosRun"`
	ID        string          `json:"id"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	LaneCount int             `json:"laneCount,omitempty"`
	Coverage  *coverage.Raw   `json:"coverage,omitempty"`
}

// WorkerStats summarizes a pool's lifetime activity. Spawns counts
// serve-mode processes started, Reuses counts requests served by an
// already-warm worker (the startup cost the pool amortized away), and
// Respawns counts workers killed after a deadline or protocol error —
// their slot respawns lazily on the next request. Batches counts batch
// requests dispatched (each covering many lanes in one frame). Warm is
// the number of workers currently parked idle (a live gauge, not a
// lifetime counter).
type WorkerStats struct {
	Spawns    int64 `json:"spawns"`
	Reuses    int64 `json:"reuses"`
	Respawns  int64 `json:"respawns"`
	Batches   int64 `json:"batches,omitempty"`
	Artifacts int   `json:"artifacts"`
	Warm      int   `json:"warm"`
}

// ReuseRatio is the fraction of requests an already-warm worker served:
// Reuses / (Spawns + Reuses). Zero when the pool has done nothing.
func (s WorkerStats) ReuseRatio() float64 {
	if total := s.Spawns + s.Reuses; total > 0 {
		return float64(s.Reuses) / float64(total)
	}
	return 0
}

// WorkerPool keeps warm serve-mode processes per built artifact, so a
// sweep of many short runs pays Go process startup once per worker
// instead of once per run. Workers are spawned on demand, up to
// perArtifact per binary, and parked between requests. A worker that
// misses its deadline or breaks the frame protocol is killed (whole
// process group) and its slot respawns on the next request. All methods
// are safe for concurrent use.
type WorkerPool struct {
	perArtifact int

	mu     sync.Mutex
	arts   map[string]*poolArtifact
	closed bool

	spawns, reuses, respawns, batches int64
}

// poolArtifact is the per-binary worker set: slots holds one token per
// not-yet-spawned worker; idle holds warm workers awaiting a request.
// A worker serving a request holds neither, so draining perArtifact
// tokens across both channels observes every worker exactly once.
type poolArtifact struct {
	bin   string
	slots chan struct{}
	idle  chan *serveWorker
}

// NewWorkerPool creates a pool keeping up to perArtifact warm processes
// per built binary (minimum 1).
func NewWorkerPool(perArtifact int) *WorkerPool {
	if perArtifact < 1 {
		perArtifact = 1
	}
	return &WorkerPool{perArtifact: perArtifact, arts: make(map[string]*poolArtifact)}
}

// PerArtifact returns the pool's per-binary worker cap.
func (p *WorkerPool) PerArtifact() int { return p.perArtifact }

// Stats returns the pool's lifetime counters and the current warm-idle
// worker count.
func (p *WorkerPool) Stats() WorkerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	warm := 0
	for _, art := range p.arts {
		warm += len(art.idle)
	}
	return WorkerStats{
		Spawns: p.spawns, Reuses: p.reuses, Respawns: p.respawns,
		Batches: p.batches, Artifacts: len(p.arts), Warm: warm,
	}
}

// RunContext executes one simulation request on a warm worker for
// binPath, spawning one if none is idle and the per-artifact cap allows.
// It honors RunOptions exactly like RunContext: Steps/Budget/SeedXor
// select the simulated span, Timeout bounds the request (the worker is
// killed and left to respawn on overrun), Heartbeat/Progress stream
// run-tagged snapshots. reused reports whether an already-warm worker
// served the request.
func (p *WorkerPool) RunContext(ctx context.Context, binPath string, opts RunOptions) (res *simresult.Results, reused bool, err error) {
	defer opts.Trace.Start("run").End()
	art, err := p.artifact(binPath)
	if err != nil {
		return nil, false, err
	}
	w, reused, err := p.acquire(ctx, art, &opts)
	if err != nil {
		return nil, false, err
	}
	res, err = w.run(ctx, opts)
	p.release(art, w, reused, err != nil)
	if err != nil {
		return nil, reused, err
	}
	return res, reused, nil
}

// RunBatch executes one batched lane request on a warm worker for
// binPath: one lane per seedXor, all stepped to opts.Steps through the
// generated batch loop in a single request/response frame, returning
// per-lane results in seed order plus the batch's OR-merged coverage
// (nil when coverage is off). Batch requests are step-bounded
// (opts.Budget must be zero); opts.Timeout bounds the whole batch —
// callers scale it by the lane count when they mean a per-run deadline.
func (p *WorkerPool) RunBatch(ctx context.Context, binPath string, opts RunOptions, seedXors []uint64) (res []*simresult.Results, cov *coverage.Raw, reused bool, err error) {
	defer opts.Trace.Start("run").End()
	if len(seedXors) == 0 {
		return nil, nil, false, errors.New("harness: RunBatch needs at least one seed")
	}
	if opts.Budget > 0 {
		return nil, nil, false, errors.New("harness: RunBatch is step-bounded; Budget is unsupported")
	}
	art, err := p.artifact(binPath)
	if err != nil {
		return nil, nil, false, err
	}
	w, reused, err := p.acquire(ctx, art, &opts)
	if err != nil {
		return nil, nil, false, err
	}
	res, cov, err = w.runBatch(ctx, opts, seedXors)
	p.release(art, w, reused, err != nil)
	if err != nil {
		return nil, nil, reused, err
	}
	p.mu.Lock()
	p.batches++
	p.mu.Unlock()
	return res, cov, reused, nil
}

// artifact returns (creating on first use) the per-binary worker set.
func (p *WorkerPool) artifact(binPath string) (*poolArtifact, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, errors.New("harness: worker pool is closed")
	}
	art := p.arts[binPath]
	if art == nil {
		art = &poolArtifact{
			bin:   binPath,
			slots: make(chan struct{}, p.perArtifact),
			idle:  make(chan *serveWorker, p.perArtifact),
		}
		for i := 0; i < p.perArtifact; i++ {
			art.slots <- struct{}{}
		}
		p.arts[binPath] = art
	}
	return art, nil
}

// release returns a worker to the idle set after a successful request,
// or destroys it and frees its slot: a worker that erred has suspect
// state and must never serve again (its slot respawns on demand), and a
// pool closed mid-request must not re-park live processes.
func (p *WorkerPool) release(art *poolArtifact, w *serveWorker, reused, failed bool) {
	if failed {
		w.destroy()
		art.slots <- struct{}{}
		p.mu.Lock()
		p.respawns++
		p.mu.Unlock()
		return
	}
	p.mu.Lock()
	if reused {
		p.reuses++
	}
	closed := p.closed
	p.mu.Unlock()
	if closed {
		w.destroy()
		art.slots <- struct{}{}
	} else {
		art.idle <- w
	}
}

// acquire obtains a worker: an idle one when available (preferred — that
// is the whole point of the pool), otherwise a fresh spawn if a slot is
// free, otherwise it blocks until either appears or ctx ends.
func (p *WorkerPool) acquire(ctx context.Context, art *poolArtifact, opts *RunOptions) (*serveWorker, bool, error) {
	select {
	case w := <-art.idle:
		return w, true, nil
	default:
	}
	select {
	case w := <-art.idle:
		return w, true, nil
	case <-art.slots:
		w, err := spawnWorker(art.bin)
		if err != nil {
			art.slots <- struct{}{}
			return nil, false, fmt.Errorf("harness: spawning worker for %s: %w", opts.label(art.bin), err)
		}
		p.mu.Lock()
		p.spawns++
		p.mu.Unlock()
		return w, false, nil
	case <-ctx.Done():
		return nil, false, fmt.Errorf("harness: running %s: %w", opts.label(art.bin), ctx.Err())
	}
}

// Close kills every worker and rejects further requests. It waits for
// in-flight requests to release their workers, so no serve-mode process
// outlives the pool.
func (p *WorkerPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	arts := make([]*poolArtifact, 0, len(p.arts))
	for _, a := range p.arts {
		arts = append(arts, a)
	}
	p.mu.Unlock()
	for _, art := range arts {
		// Collect perArtifact tokens per artifact: each worker is either
		// unspawned (slots), parked (idle — destroy it), or in flight (its
		// request's release path sees closed, destroys it, and returns the
		// slot token, which this loop then collects).
		for i := 0; i < p.perArtifact; i++ {
			select {
			case w := <-art.idle:
				w.destroy()
			case <-art.slots:
			}
		}
	}
}

// serveWorker is one live serve-mode process. A worker serves requests
// strictly one at a time (the pool guarantees exclusive ownership while a
// request is in flight); hbMu only synchronizes the request goroutine
// with the long-lived stderr drain goroutine.
type serveWorker struct {
	bin    string
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	out    *bufio.Reader
	nextID int64

	hbMu       sync.Mutex
	curRun     string
	curCorr    string
	progress   func(obs.Snapshot)
	timeline   []obs.Snapshot
	finalSeen  chan struct{} // closed when the current run's final heartbeat lands
	tail       []string
	stderrDone chan struct{}
}

// spawnWorker starts binPath in serve mode with its pipes wired up and
// the stderr drain running.
func spawnWorker(binPath string) (*serveWorker, error) {
	cmd := exec.Command(binPath, "-serve")
	setProcGroup(cmd)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	w := &serveWorker{
		bin:   binPath,
		cmd:   cmd,
		stdin: stdin,
		out:   bufio.NewReaderSize(stdout, 64*1024),

		stderrDone: make(chan struct{}),
	}
	go w.drain(stderr)
	return w, nil
}

// drain consumes the worker's stderr for its whole life: heartbeats
// tagged with the current request id feed that request's timeline and
// progress callback (stale tags from an earlier request are dropped);
// everything else lands in the diagnostic tail ring.
func (w *serveWorker) drain(r io.Reader) {
	defer close(w.stderrDone)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if snap, ok := obs.ParseHeartbeat(line); ok {
			w.hbMu.Lock()
			var cb func(obs.Snapshot)
			var fin chan struct{}
			if snap.Run != "" && snap.Run == w.curRun {
				snap.Corr = w.curCorr
				w.timeline = append(w.timeline, snap)
				cb = w.progress
				if snap.Final && w.finalSeen != nil {
					fin = w.finalSeen
					w.finalSeen = nil
				}
			}
			w.hbMu.Unlock()
			if cb != nil {
				cb(snap)
			}
			// Signal the final snapshot only after its callback returns,
			// so a run that waits on finalSeen observes every progress
			// invocation for its own run as already finished.
			if fin != nil {
				close(fin)
			}
			continue
		}
		w.hbMu.Lock()
		w.tail = append(w.tail, string(line))
		if len(w.tail) > errTailLines {
			w.tail = w.tail[len(w.tail)-errTailLines:]
		}
		w.hbMu.Unlock()
	}
	if sc.Err() != nil {
		io.Copy(io.Discard, r)
	}
}

// errTail snapshots the worker's diagnostic stderr tail for an error.
func (w *serveWorker) errTail() string {
	w.hbMu.Lock()
	defer w.hbMu.Unlock()
	return strings.Join(w.tail, "\n")
}

// evidence snapshots the bounded forensic state a RunError carries: the
// diagnostic stderr tail and the current run's trailing heartbeats.
func (w *serveWorker) evidence() ([]string, []obs.Snapshot) {
	w.hbMu.Lock()
	defer w.hbMu.Unlock()
	return append([]string(nil), w.tail...), heartbeatTail(w.timeline)
}

// fail builds a structured RunError around the worker's current
// evidence (diagnostic stderr tail, trailing heartbeats).
func (w *serveWorker) fail(opts RunOptions, reason string, cause error, msg string) *RunError {
	tail, hbs := w.evidence()
	return &RunError{
		Model: opts.Model, Suite: opts.Suite, Bin: w.bin, Corr: opts.RunID,
		Reason: reason, ExitCode: -1,
		StderrTail: tail, Heartbeats: hbs,
		Err: cause, msg: msg,
	}
}

// run sends one simulation request and decodes its result document.
// A worker that errors here must not be reused; the pool destroys it.
func (w *serveWorker) run(ctx context.Context, opts RunOptions) (*simresult.Results, error) {
	// The frame carries the step count AND the budget: with both set the
	// worker stops at whichever bound is reached first — the same
	// semantics spawn-per-run passes via flags, so pooled and spawned
	// execution of a steps+budget run stay bit-identical.
	req := serveRequest{SeedXor: opts.SeedXor, Steps: opts.Steps}
	if opts.Budget > 0 {
		req.BudgetMS = clampMS(opts.Budget)
	}
	frame, _, timeline, err := w.exchange(ctx, opts, req)
	if err != nil {
		return nil, err
	}
	var res simresult.Results
	if !simresult.DecodeGenerated(frame.Result, &res) {
		if err := json.Unmarshal(frame.Result, &res); err != nil {
			return nil, w.fail(opts, ReasonDecode, err,
				fmt.Sprintf("harness: running %s: decoding worker results: %v", opts.label(w.bin), err))
		}
	}
	res.Timeline = timeline
	return &res, nil
}

// runBatch sends one batched lane request (one lane per seedXor, all
// stepped to opts.Steps) and decodes the per-lane result lines. The
// aggregate batch heartbeats are not attached to any single lane.
func (w *serveWorker) runBatch(ctx context.Context, opts RunOptions, seedXors []uint64) ([]*simresult.Results, *coverage.Raw, error) {
	req := serveRequest{Batch: 1, SeedXors: seedXors, Steps: opts.Steps}
	frame, lanes, _, err := w.exchange(ctx, opts, req)
	if err != nil {
		return nil, nil, err
	}
	if len(lanes) != len(seedXors) {
		return nil, nil, w.fail(opts, ReasonProtocol, nil,
			fmt.Sprintf("harness: running %s: batch frame mismatch (%d lanes for %d seeds)",
				opts.label(w.bin), len(lanes), len(seedXors)))
	}
	out, i, err := decodeLanes(lanes)
	if err != nil {
		return nil, nil, w.fail(opts, ReasonDecode, err,
			fmt.Sprintf("harness: running %s: decoding batch lane %d: %v", opts.label(w.bin), i, err))
	}
	return out, frame.Coverage, nil
}

// exchange assigns the request id, sends one request frame and reads
// its validated response frame, enforcing the per-request Timeout by
// killing the process group — the exchange goroutine then unblocks on
// the closed pipe. It owns the heartbeat registration for the request
// and returns the collected timeline alongside the frame. Frame
// validation (marker, id, worker error) happens here; result decoding
// is the caller's.
func (w *serveWorker) exchange(ctx context.Context, opts RunOptions, req serveRequest) (*serveFrame, [][]byte, []obs.Snapshot, error) {
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, fmt.Errorf("harness: running %s: %w", opts.label(w.bin), err)
	}
	w.nextID++
	id := fmt.Sprintf("r%d", w.nextID)
	req.ID, req.Corr = id, opts.RunID
	if opts.Heartbeat > 0 {
		req.HeartbeatMS = clampMS(opts.Heartbeat)
	}
	line, err := json.Marshal(req)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("harness: encoding request: %w", err)
	}
	line = append(line, '\n')

	w.hbMu.Lock()
	w.curRun, w.curCorr, w.timeline, w.progress = id, opts.RunID, nil, opts.Progress
	var finalSeen chan struct{}
	if req.HeartbeatMS > 0 {
		finalSeen = make(chan struct{})
	}
	w.finalSeen = finalSeen
	w.hbMu.Unlock()

	type exchanged struct {
		frame []byte
		lanes [][]byte
		err   error
	}
	ch := make(chan exchanged, 1)
	go func() {
		if _, err := w.stdin.Write(line); err != nil {
			ch <- exchanged{err: fmt.Errorf("writing request: %w", err)}
			return
		}
		frame, err := w.out.ReadBytes('\n')
		if err != nil {
			ch <- exchanged{frame: frame, err: err}
			return
		}
		// Batch responses follow the header frame with one raw result
		// line per lane; read them here so the cancellation kill path
		// below covers a worker wedged mid-batch too.
		var lanes [][]byte
		if req.Batch != 0 {
			var hdr struct {
				LaneCount int `json:"laneCount"`
			}
			if json.Unmarshal(frame, &hdr) == nil && hdr.LaneCount > 0 {
				lanes = make([][]byte, 0, hdr.LaneCount)
				for i := 0; i < hdr.LaneCount; i++ {
					lane, err := w.out.ReadBytes('\n')
					if err != nil {
						ch <- exchanged{frame: frame, err: fmt.Errorf("reading batch lane %d of %d: %w", i+1, hdr.LaneCount, err)}
						return
					}
					lanes = append(lanes, lane)
				}
			}
		}
		ch <- exchanged{frame: frame, lanes: lanes}
	}()
	var ex exchanged
	select {
	case <-ctx.Done():
		killProcGroup(w.cmd)
		<-ch
		if errors.Is(ctx.Err(), context.DeadlineExceeded) && opts.Timeout > 0 {
			e := w.fail(opts, ReasonTimeout, context.DeadlineExceeded,
				fmt.Sprintf("harness: running %s: worker killed after exceeding the %v timeout\n%s",
					opts.label(w.bin), opts.Timeout, w.errTail()))
			e.Timeout = opts.Timeout
			return nil, nil, nil, e
		}
		return nil, nil, nil, w.fail(opts, ReasonCanceled, ctx.Err(),
			fmt.Sprintf("harness: running %s: worker killed: %v\n%s",
				opts.label(w.bin), ctx.Err(), w.errTail()))
	case ex = <-ch:
	}
	if ex.err != nil {
		return nil, nil, nil, w.fail(opts, ReasonProtocol, ex.err,
			fmt.Sprintf("harness: running %s: worker protocol failure: %v\n%s",
				opts.label(w.bin), ex.err, w.errTail()))
	}
	var frame serveFrame
	if err := json.Unmarshal(ex.frame, &frame); err != nil {
		return nil, nil, nil, w.fail(opts, ReasonProtocol, err,
			fmt.Sprintf("harness: running %s: decoding worker frame: %v\n%s",
				opts.label(w.bin), err, w.errTail()))
	}
	if frame.Marker != 1 || frame.ID != id {
		return nil, nil, nil, w.fail(opts, ReasonProtocol, nil,
			fmt.Sprintf("harness: running %s: worker frame mismatch (marker %d, id %q, want %q)",
				opts.label(w.bin), frame.Marker, frame.ID, id))
	}
	if frame.Error != "" {
		return nil, nil, nil, w.fail(opts, ReasonWorker, nil,
			fmt.Sprintf("harness: running %s: worker: %s", opts.label(w.bin), frame.Error))
	}
	if finalSeen != nil {
		// The worker writes the run's final heartbeat to stderr before its
		// stdout frame, so the bytes are already in flight — wait briefly
		// for the drain goroutine to deliver it rather than return a
		// timeline missing its final snapshot. Bounded so a pathological
		// stderr consumer can't wedge the request.
		select {
		case <-finalSeen:
		case <-time.After(time.Second):
		case <-ctx.Done():
		}
	}
	w.hbMu.Lock()
	timeline := w.timeline
	w.curRun, w.curCorr, w.timeline, w.progress, w.finalSeen = "", "", nil, nil, nil
	w.hbMu.Unlock()
	return &frame, ex.lanes, timeline, nil
}

// destroy kills the worker's process group and reaps it. Safe to call on
// an already-dead worker.
func (w *serveWorker) destroy() {
	w.stdin.Close()
	killProcGroup(w.cmd)
	w.cmd.Wait()
	<-w.stderrDone
}
