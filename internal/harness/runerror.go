package harness

import (
	"fmt"
	"time"

	"accmos/internal/obs"
)

// Failure reasons recorded on a RunError — the machine-readable
// classification a debug bundle or metrics label keys on, next to the
// human-oriented Error() text.
const (
	// ReasonTimeout: the run (or worker request) exceeded its wall-clock
	// deadline and its process group was killed.
	ReasonTimeout = "timeout"
	// ReasonCanceled: the caller's context was canceled mid-run.
	ReasonCanceled = "canceled"
	// ReasonExit: the generated binary exited non-zero on its own.
	ReasonExit = "exit"
	// ReasonProtocol: a serve-mode worker broke the NDJSON frame protocol
	// (unreadable frame, marker/id mismatch) and was destroyed.
	ReasonProtocol = "protocol"
	// ReasonWorker: a serve-mode worker answered with an error frame.
	ReasonWorker = "worker-error"
	// ReasonDecode: the binary exited cleanly but its result document did
	// not decode.
	ReasonDecode = "decode"
)

// errHeartbeats bounds how many trailing heartbeats a RunError retains —
// enough to see what the simulation was doing when it died without
// carrying a whole timeline.
const errHeartbeats = 8

// RunError is the structured form of a generated-binary execution
// failure: what died (model, suite, binary, correlation ID), why
// (Reason, exit code, deadline), and the bounded evidence (stderr tail,
// last heartbeats) a caller needs to debug the run after the fact — the
// raw material of accmosd's per-job debug bundles. Error() renders the
// same human-readable message the harness has always produced, so
// callers that only print keep working.
type RunError struct {
	// Model and Suite identify the run (RunOptions.Model / .Suite).
	Model string
	Suite int
	// Bin is the binary path that was executing.
	Bin string
	// Corr is the run's correlation ID (RunOptions.RunID).
	Corr string
	// Reason is one of the Reason* constants.
	Reason string
	// Timeout is the deadline that fired when Reason == ReasonTimeout.
	Timeout time.Duration
	// ExitCode is the process exit code (-1 when unknown, e.g. killed by
	// signal or still attributed to a live worker).
	ExitCode int
	// StderrTail holds the last non-heartbeat stderr lines (bounded by
	// errTailLines).
	StderrTail []string
	// Heartbeats holds the last progress snapshots seen before the
	// failure (bounded by errHeartbeats).
	Heartbeats []obs.Snapshot
	// Err is the underlying cause (context.Canceled,
	// context.DeadlineExceeded, the exec wait error, ...).
	Err error

	msg string
}

// Error returns the preformatted harness error message. An externally
// constructed RunError (a stub runner, a test) has no preformatted text
// and falls back to a minimal rendering of its fields.
func (e *RunError) Error() string {
	if e.msg != "" {
		return e.msg
	}
	return fmt.Sprintf("harness: running %s: %s", e.Bin, e.Reason)
}

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *RunError) Unwrap() error { return e.Err }

// heartbeatTail bounds a timeline to its last errHeartbeats entries.
func heartbeatTail(timeline []obs.Snapshot) []obs.Snapshot {
	if len(timeline) <= errHeartbeats {
		return append([]obs.Snapshot(nil), timeline...)
	}
	return append([]obs.Snapshot(nil), timeline[len(timeline)-errHeartbeats:]...)
}
