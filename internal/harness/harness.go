// Package harness compiles and executes AccMoS-generated simulation
// programs: it writes the generated source, invokes the Go compiler (the
// paper's "compile and execute the code" step), runs the binary, and
// decodes the JSON results into the shared simresult schema.
package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"accmos/internal/codegen"
	"accmos/internal/simresult"
)

// Build compiles a generated program into a binary under dir (created if
// needed) and returns the binary path plus the compile duration.
func Build(p *codegen.Program, dir string) (string, time.Duration, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, fmt.Errorf("harness: %w", err)
	}
	srcPath := filepath.Join(dir, "main.go")
	if err := os.WriteFile(srcPath, []byte(p.Source), 0o644); err != nil {
		return "", 0, fmt.Errorf("harness: writing source: %w", err)
	}
	binPath := filepath.Join(dir, "sim_"+sanitizeFile(p.Model))
	start := time.Now()
	cmd := exec.Command("go", "build", "-o", binPath, srcPath)
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0", "GOFLAGS=-mod=mod")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", 0, fmt.Errorf("harness: compiling generated program: %v\n%s", err, annotate(p.Source, stderr.String()))
	}
	return binPath, time.Since(start), nil
}

// sanitizeFile keeps binary names filesystem-safe.
func sanitizeFile(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// annotate prefixes compiler errors with the offending source lines so
// generation bugs are debuggable from test failures.
func annotate(src, errs string) string {
	if len(errs) > 4096 {
		errs = errs[:4096] + "\n... (truncated)"
	}
	lines := splitLines(src)
	out := errs + "\n--- generated source (first 120 lines) ---\n"
	for i, l := range lines {
		if i >= 120 {
			out += "...\n"
			break
		}
		out += fmt.Sprintf("%4d| %s\n", i+1, l)
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// RunOptions selects the simulated span for one execution.
type RunOptions struct {
	Steps  int64         // -steps (ignored when Budget > 0)
	Budget time.Duration // wall-clock budget (-budget-ms)
	// SeedXor perturbs the program's embedded uniform test-case seeds
	// (-seed-xor), so one binary sweeps many random suites.
	SeedXor uint64
}

// Run executes a built simulation binary and decodes its results.
func Run(binPath string, opts RunOptions) (*simresult.Results, error) {
	args := []string{}
	if opts.SeedXor != 0 {
		args = append(args, fmt.Sprintf("-seed-xor=%d", opts.SeedXor))
	}
	if opts.Budget > 0 {
		args = append(args, fmt.Sprintf("-budget-ms=%d", opts.Budget.Milliseconds()))
	} else {
		args = append(args, fmt.Sprintf("-steps=%d", opts.Steps))
	}
	cmd := exec.Command(binPath, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("harness: running %s: %v\n%s", binPath, err, stderr.String())
	}
	var res simresult.Results
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		return nil, fmt.Errorf("harness: decoding results: %w", err)
	}
	return &res, nil
}

// BuildAndRun is the one-shot pipeline: compile, execute, and record the
// compile time in the results.
func BuildAndRun(p *codegen.Program, dir string, opts RunOptions) (*simresult.Results, error) {
	bin, compileTime, err := Build(p, dir)
	if err != nil {
		return nil, err
	}
	res, err := Run(bin, opts)
	if err != nil {
		return nil, err
	}
	res.CompileNanos = compileTime.Nanoseconds()
	return res, nil
}
