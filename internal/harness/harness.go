// Package harness compiles and executes AccMoS-generated simulation
// programs: it writes the generated source, invokes the Go compiler (the
// paper's "compile and execute the code" step), runs the binary, and
// decodes the JSON results into the shared simresult schema.
//
// Every execution path is context-aware: RunContext kills a wedged or
// runaway generated binary (its whole process group, so grandchildren die
// too) when the context is cancelled or the per-run Timeout elapses, and
// reports the deadline in the error instead of hanging the caller.
package harness

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"accmos/internal/codegen"
	"accmos/internal/coverage"
	"accmos/internal/obs"
	"accmos/internal/simresult"
)

// Build compiles a generated program into a binary under dir (created if
// needed) and returns the binary path plus the compile duration.
func Build(p *codegen.Program, dir string) (string, time.Duration, error) {
	return BuildContext(context.Background(), p, dir, nil)
}

// BuildTraced is Build recording a "compile" span on the tracer (nil ok).
func BuildTraced(p *codegen.Program, dir string, tr *obs.Tracer) (string, time.Duration, error) {
	return BuildContext(context.Background(), p, dir, tr)
}

// BuildContext is BuildTraced bounded by a context: cancelling ctx kills
// an in-flight `go build` instead of letting the compile run to
// completion after the caller has given up on the result.
func BuildContext(ctx context.Context, p *codegen.Program, dir string, tr *obs.Tracer) (string, time.Duration, error) {
	defer tr.Start("compile").End()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, fmt.Errorf("harness: %w", err)
	}
	srcPath := srcPathFor(p, dir)
	if err := os.WriteFile(srcPath, []byte(p.Source), 0o644); err != nil {
		return "", 0, fmt.Errorf("harness: writing source: %w", err)
	}
	binPath := binPathFor(p, dir)
	start := time.Now()
	cmd := exec.CommandContext(ctx, "go", "build", "-o", binPath, srcPath)
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0", "GOFLAGS=-mod=mod")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return "", 0, fmt.Errorf("harness: compiling generated program for %s: %w", p.Model, ctxErr)
		}
		return "", 0, fmt.Errorf("harness: compiling generated program: %v\n%s", err, annotate(p.Source, stderr.String()))
	}
	return binPath, time.Since(start), nil
}

// artifactTag names a program's on-disk artifacts. It carries a short
// content hash: distinct models whose names sanitize identically (m.1 vs
// m_1) get distinct binaries, and two builds sharing one WorkDir never
// race on a common main.go.
// Optimized programs additionally carry their opt level, so an -O0 and an
// -O1 build of one model are tell-apart on disk and can never serve each
// other's binary even if a hash were ever truncated into collision.
func artifactTag(p *codegen.Program) string {
	if p.Opt != "" {
		return "sim_" + sanitizeFile(p.Model) + "_" + sanitizeFile(p.Opt) + "_" + shortHash(p)
	}
	return "sim_" + sanitizeFile(p.Model) + "_" + shortHash(p)
}

// srcPathFor returns the generated-source path a build under dir uses.
func srcPathFor(p *codegen.Program, dir string) string {
	return filepath.Join(dir, artifactTag(p)+".go")
}

// binPathFor returns the binary path a build under dir produces.
func binPathFor(p *codegen.Program, dir string) string {
	return filepath.Join(dir, artifactTag(p))
}

// shortHash is the artifact-name fragment of a program's content hash.
func shortHash(p *codegen.Program) string {
	h := p.Hash()
	if len(h) > 10 {
		h = h[:10]
	}
	return h
}

// sanitizeFile keeps binary names filesystem-safe.
func sanitizeFile(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// annotate prefixes compiler errors with the offending source lines so
// generation bugs are debuggable from test failures.
func annotate(src, errs string) string {
	if len(errs) > 4096 {
		errs = errs[:4096] + "\n... (truncated)"
	}
	lines := splitLines(src)
	out := errs + "\n--- generated source (first 120 lines) ---\n"
	for i, l := range lines {
		if i >= 120 {
			out += "...\n"
			break
		}
		out += fmt.Sprintf("%4d| %s\n", i+1, l)
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// RunOptions selects the simulated span for one execution.
type RunOptions struct {
	// Steps bounds the simulated step count (-steps). With Budget also
	// set, the run stops at whichever bound is reached first; Steps <= 0
	// under a Budget means budget-only.
	Steps  int64
	Budget time.Duration // wall-clock budget (-budget-ms)
	// SeedXor perturbs the program's embedded uniform test-case seeds
	// (-seed-xor), so one binary sweeps many random suites.
	SeedXor uint64

	// Model and Suite label this run in errors: in a multi-model,
	// multi-suite workload (a parallel sweep, or the accmosd daemon
	// serving many jobs) a bare binary path does not say which model or
	// which sweep suite died. Model is the model name; Suite is the
	// 1-based suite index within a sweep (0 outside one). Both are
	// optional and purely diagnostic.
	Model string
	Suite int

	// RunID is the run's correlation ID (the job ID under accmosd, a
	// generated run ID for CLI runs). The harness stamps it onto every
	// decoded heartbeat (Snapshot.Corr) and onto run errors, so logs,
	// NDJSON events and failures for one run are joinable. Optional.
	RunID string

	// Timeout kills the binary (and its process group) when it runs
	// longer than this wall clock span — the guard against a wedged or
	// runaway generated program. Zero means no deadline.
	Timeout time.Duration

	// Heartbeat enables the binary's NDJSON progress stream on stderr at
	// this interval (-heartbeat-ms). Zero leaves it off — the default.
	Heartbeat time.Duration
	// Progress receives each heartbeat snapshot as it is decoded.
	Progress func(obs.Snapshot)
	// Trace records a "run" span when non-nil.
	Trace *obs.Tracer
}

// label renders the run's error identity: the model name and suite tag
// when the caller supplied them, always ending with the binary path.
// "CSEV suite 3 (/tmp/.../sim_CSEV_ab12cd34)" or just the path.
func (o *RunOptions) label(binPath string) string {
	var sb strings.Builder
	if o.Model != "" {
		sb.WriteString(o.Model)
		sb.WriteByte(' ')
	}
	if o.Suite > 0 {
		fmt.Fprintf(&sb, "suite %d ", o.Suite)
	}
	if sb.Len() > 0 {
		fmt.Fprintf(&sb, "(%s)", binPath)
		return sb.String()
	}
	return binPath
}

// errTailLines bounds how many non-heartbeat stderr lines a run error
// carries — enough to diagnose a crash without drowning the error in the
// progress stream or a long panic trace.
const errTailLines = 20

// clampMS renders a positive duration in the whole milliseconds the
// generated program's flag/request contract speaks, clamping
// sub-millisecond spans up to 1: emitting 0 would read as "disabled"
// on the other side (the PR 2 -budget-ms=0 regression class). One
// helper for every path — spawn flags and serve frames alike — so the
// clamp can't drift between them again.
func clampMS(d time.Duration) int64 {
	ms := d.Milliseconds()
	if ms <= 0 {
		ms = 1
	}
	return ms
}

// Run executes a built simulation binary and decodes its results. The
// binary's stderr is consumed as a line stream: heartbeat records are
// decoded into progress snapshots (delivered to opts.Progress and
// collected as the result Timeline); everything else is treated as
// diagnostics, of which the last errTailLines accompany a run error.
func Run(binPath string, opts RunOptions) (*simresult.Results, error) {
	return RunContext(context.Background(), binPath, opts)
}

// RunContext is Run bounded by a context: when ctx is cancelled — or the
// RunOptions.Timeout deadline passes — the binary's process group is
// killed and the returned error names the reason instead of blocking
// until the process chooses to exit.
func RunContext(ctx context.Context, binPath string, opts RunOptions) (*simresult.Results, error) {
	defer opts.Trace.Start("run").End()
	args := []string{}
	if opts.SeedXor != 0 {
		args = append(args, fmt.Sprintf("-seed-xor=%d", opts.SeedXor))
	}
	if opts.Heartbeat > 0 {
		args = append(args, fmt.Sprintf("-heartbeat-ms=%d", clampMS(opts.Heartbeat)))
	}
	if opts.Budget > 0 {
		args = append(args, fmt.Sprintf("-budget-ms=%d", clampMS(opts.Budget)))
		// An explicit step count rides along with the budget: the run
		// stops at whichever bound is reached first — the same semantics
		// a serve-mode request carries, so pooled and spawn-per-run
		// execution of a steps+budget run agree.
		if opts.Steps > 0 {
			args = append(args, fmt.Sprintf("-steps=%d", opts.Steps))
		}
	} else {
		args = append(args, fmt.Sprintf("-steps=%d", opts.Steps))
	}
	var res simresult.Results
	timeline, err := execDecode(ctx, binPath, args, opts, &res)
	if err != nil {
		return nil, err
	}
	res.Timeline = timeline
	return &res, nil
}

// batchDoc consumes the stdout of a -batch-seeds invocation: a header
// line naming the lane count and carrying the batch's OR-merged
// coverage, then one raw result line per lane in request seed order.
// Line-splitting keeps the harness from scanning one giant JSON value;
// the raw lanes decode in parallel afterwards.
type batchDoc struct {
	want  int
	lanes [][]byte
	cov   *coverage.Raw
}

func (b *batchDoc) consume(r io.Reader) error {
	br := bufio.NewReaderSize(r, 1<<16)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return fmt.Errorf("reading batch header: %w", err)
	}
	var hdr struct {
		Marker    int           `json:"accmosBatch"`
		LaneCount int           `json:"laneCount"`
		Coverage  *coverage.Raw `json:"coverage"`
	}
	if err := json.Unmarshal(line, &hdr); err != nil {
		return fmt.Errorf("decoding batch header: %w", err)
	}
	if hdr.Marker != 1 || hdr.LaneCount != b.want {
		return fmt.Errorf("batch document mismatch (marker %d, %d lanes for %d seeds)",
			hdr.Marker, hdr.LaneCount, b.want)
	}
	b.cov = hdr.Coverage
	b.lanes = make([][]byte, 0, hdr.LaneCount)
	for i := 0; i < hdr.LaneCount; i++ {
		lane, err := br.ReadBytes('\n')
		if err != nil {
			return fmt.Errorf("reading batch lane %d of %d: %w", i+1, hdr.LaneCount, err)
		}
		b.lanes = append(b.lanes, lane)
	}
	return nil
}

// seedList renders seed xors as the generated -batch-seeds flag value.
func seedList(xs []uint64) string {
	var sb strings.Builder
	for i, x := range xs {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", x)
	}
	return sb.String()
}

// RunBatch executes one spawn of the built binary in batched lane mode:
// one lane per seedXor, all stepped to opts.Steps through the generated
// batch loop, returning the per-lane results in seed order plus the
// batch's OR-merged coverage (nil when coverage is off). Batch runs are
// step-bounded (opts.Budget must be zero); Timeout bounds the whole
// batch. Per-lane ExecNanos is the batch wall clock split evenly — the
// lane results are bit-identical to sequential runs in everything the
// equivalence oracle compares (hash, diagnostics), timing aside, and
// the merged coverage equals the OR of the sequential runs' bitmaps.
func RunBatch(ctx context.Context, binPath string, opts RunOptions, seedXors []uint64) ([]*simresult.Results, *coverage.Raw, error) {
	defer opts.Trace.Start("run").End()
	if len(seedXors) == 0 {
		return nil, nil, fmt.Errorf("harness: RunBatch needs at least one seed")
	}
	if opts.Budget > 0 {
		return nil, nil, fmt.Errorf("harness: RunBatch is step-bounded; Budget is unsupported")
	}
	args := []string{
		"-batch-seeds=" + seedList(seedXors),
		fmt.Sprintf("-steps=%d", opts.Steps),
	}
	if opts.Heartbeat > 0 {
		args = append(args, fmt.Sprintf("-heartbeat-ms=%d", clampMS(opts.Heartbeat)))
	}
	doc := batchDoc{want: len(seedXors)}
	if _, err := execDecode(ctx, binPath, args, opts, &doc); err != nil {
		return nil, nil, err
	}
	out, i, err := decodeLanes(doc.lanes)
	if err != nil {
		return nil, nil, &RunError{
			Model: opts.Model, Suite: opts.Suite, Bin: binPath, Corr: opts.RunID,
			Reason: ReasonDecode, ExitCode: 0, Err: err,
			msg: fmt.Sprintf("harness: running %s: decoding batch lane %d: %v", opts.label(binPath), i, err),
		}
	}
	return out, doc.cov, nil
}

// decodeLanes unmarshals the per-lane result documents of a batch run,
// fanned out across CPUs — per-lane decode is the dominant harness-side
// cost of a short-horizon batch, and each lane is independent. Returns
// the index of the first lane that failed to decode alongside its error.
func decodeLanes(lanes [][]byte) ([]*simresult.Results, int, error) {
	out := make([]*simresult.Results, len(lanes))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(lanes) {
		workers = len(lanes)
	}
	var (
		next   atomic.Int64
		badIdx atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
		first  error
	)
	badIdx.Store(int64(len(lanes)))
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(lanes) || int64(i) > badIdx.Load() {
					return
				}
				var r simresult.Results
				if simresult.DecodeGenerated(lanes[i], &r) {
					out[i] = &r
					continue
				}
				if err := json.Unmarshal(lanes[i], &r); err != nil {
					mu.Lock()
					if int64(i) < badIdx.Load() {
						badIdx.Store(int64(i))
						first = err
					}
					mu.Unlock()
					return
				}
				out[i] = &r
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return nil, int(badIdx.Load()), first
	}
	return out, 0, nil
}

// execDecode runs one spawn of a built binary: it starts the process
// (own process group), drains stderr into the heartbeat timeline and
// diagnostic tail, streams the stdout document into out, and converts
// every failure mode into a structured *RunError. Shared by RunContext
// (simresult document) and RunBatch (batch lane document).
func execDecode(ctx context.Context, binPath string, args []string, opts RunOptions, out any) ([]obs.Snapshot, error) {
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("harness: running %s: %w", opts.label(binPath), err)
	}
	cmd := exec.Command(binPath, args...)
	setProcGroup(cmd)
	stdoutPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("harness: starting %s: %w", opts.label(binPath), err)
	}
	// Watch for cancellation while the binary runs; killing the process
	// group closes both pipes, so the drain and decode below always reach
	// EOF and cmd.Wait reaps the child.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			killProcGroup(cmd)
		case <-watchDone:
		}
	}()
	// Drain stderr concurrently while the result document streams off
	// stdout — decoding incrementally instead of buffering the whole
	// stdout (monitor-heavy results can be large).
	type drained struct {
		timeline []obs.Snapshot
		tail     []string
		scanErr  error
	}
	drainCh := make(chan drained, 1)
	go func() {
		timeline, tail, scanErr := drainStderr(stderrPipe, opts.RunID, opts.Progress)
		drainCh <- drained{timeline, tail, scanErr}
	}()
	var decErr error
	var decOffset int64
	if sc, ok := out.(interface{ consume(io.Reader) error }); ok {
		decErr = sc.consume(stdoutPipe)
	} else {
		dec := json.NewDecoder(stdoutPipe)
		decErr = dec.Decode(out)
		decOffset = dec.InputOffset()
	}
	io.Copy(io.Discard, stdoutPipe)
	d := <-drainCh
	waitErr := cmd.Wait()
	close(watchDone)
	tail := d.tail
	if d.scanErr != nil {
		tail = append(tail, fmt.Sprintf("harness: stderr scan aborted (diagnostic tail truncated): %v", d.scanErr))
	}
	if waitErr != nil {
		exitCode := -1
		if cmd.ProcessState != nil {
			exitCode = cmd.ProcessState.ExitCode()
		}
		fail := func(reason string, cause error, msg string) *RunError {
			return &RunError{
				Model: opts.Model, Suite: opts.Suite, Bin: binPath, Corr: opts.RunID,
				Reason: reason, ExitCode: exitCode,
				StderrTail: tail, Heartbeats: heartbeatTail(d.timeline),
				Err: cause, msg: msg,
			}
		}
		switch {
		case errors.Is(ctx.Err(), context.DeadlineExceeded):
			deadline := "context deadline"
			e := fail(ReasonTimeout, context.DeadlineExceeded, "")
			if opts.Timeout > 0 {
				deadline = fmt.Sprintf("%v timeout", opts.Timeout)
				e.Timeout = opts.Timeout
			}
			e.msg = fmt.Sprintf("harness: running %s: killed after exceeding the %s: %v\n%s",
				opts.label(binPath), deadline, waitErr, strings.Join(tail, "\n"))
			return nil, e
		case ctx.Err() != nil:
			return nil, fail(ReasonCanceled, context.Canceled,
				fmt.Sprintf("harness: running %s: killed: %v\n%s",
					opts.label(binPath), context.Canceled, strings.Join(tail, "\n")))
		}
		return nil, fail(ReasonExit, waitErr,
			fmt.Sprintf("harness: running %s: %v\n%s", opts.label(binPath), waitErr, strings.Join(tail, "\n")))
	}
	if decErr != nil {
		return nil, &RunError{
			Model: opts.Model, Suite: opts.Suite, Bin: binPath, Corr: opts.RunID,
			Reason: ReasonDecode, ExitCode: 0,
			StderrTail: tail, Heartbeats: heartbeatTail(d.timeline), Err: decErr,
			msg: fmt.Sprintf("harness: decoding results at byte offset %d: %v", decOffset, decErr),
		}
	}
	return d.timeline, nil
}

// drainStderr splits a running binary's stderr into the heartbeat
// timeline and the tail of ordinary diagnostic lines, stamping every
// decoded snapshot with the run's correlation ID. It reads until EOF
// (i.e. process exit), so callers may cmd.Wait afterwards: even when the
// line scanner aborts (a diagnostic line beyond its 1 MiB cap), the rest
// of the pipe is consumed so the child can never block on a full stderr
// buffer, and the scan error is returned instead of being swallowed.
func drainStderr(r io.Reader, corr string, progress func(obs.Snapshot)) (timeline []obs.Snapshot, tail []string, scanErr error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if snap, ok := obs.ParseHeartbeat(line); ok {
			snap.Corr = corr
			timeline = append(timeline, snap)
			if progress != nil {
				progress(snap)
			}
			continue
		}
		tail = append(tail, string(line))
		if len(tail) > errTailLines {
			tail = tail[len(tail)-errTailLines:]
		}
	}
	if scanErr = sc.Err(); scanErr != nil {
		io.Copy(io.Discard, r)
	}
	return timeline, tail, scanErr
}

// BuildAndRun is the one-shot pipeline: compile, execute, and record the
// compile time in the results.
func BuildAndRun(p *codegen.Program, dir string, opts RunOptions) (*simresult.Results, error) {
	return BuildAndRunContext(context.Background(), p, dir, opts)
}

// BuildAndRunContext is BuildAndRun with both phases bounded by ctx:
// cancellation aborts an in-flight compile as well as the run.
func BuildAndRunContext(ctx context.Context, p *codegen.Program, dir string, opts RunOptions) (*simresult.Results, error) {
	bin, compileTime, err := BuildContext(ctx, p, dir, opts.Trace)
	if err != nil {
		return nil, err
	}
	res, err := RunContext(ctx, bin, opts)
	if err != nil {
		return nil, err
	}
	res.CompileNanos = compileTime.Nanoseconds()
	return res, nil
}
