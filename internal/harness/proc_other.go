//go:build !unix

package harness

import "os/exec"

// setProcGroup is a no-op where process groups are unavailable; the
// fallback kill below still terminates the immediate child.
func setProcGroup(cmd *exec.Cmd) {}

// killProcGroup kills the immediate child process.
func killProcGroup(cmd *exec.Cmd) {
	if cmd.Process != nil {
		cmd.Process.Kill()
	}
}
