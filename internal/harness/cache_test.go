package harness_test

import (
	"os"
	"strings"
	"sync"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/codegen"
	"accmos/internal/harness"
	"accmos/internal/model"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

func cacheProgram(t *testing.T, steps int64) *codegen.Program {
	t.Helper()
	m := model.NewBuilder("C").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", "2")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Chain("In", "G", "Out").
		MustBuild()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := codegen.Generate(c, codegen.Options{
		Coverage: true, TestCases: testcase.NewRandomSet(1, 1, -1, 1), DefaultSteps: steps,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildCacheHitAndMiss(t *testing.T) {
	cache := harness.NewBuildCache(t.TempDir())
	defer cache.Remove()

	p := cacheProgram(t, 100)
	bin1, ct1, hit1, err := cache.Build(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hit1 {
		t.Error("first build reported a cache hit")
	}
	if ct1 <= 0 {
		t.Error("first build recorded no compile time")
	}
	bin2, _, hit2, err := cache.Build(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 {
		t.Error("second build of the identical program missed the cache")
	}
	if bin1 != bin2 {
		t.Errorf("hit returned a different binary: %s vs %s", bin1, bin2)
	}

	// A different embedded option (DefaultSteps) changes the source, the
	// hash, and therefore the cache key.
	other := cacheProgram(t, 200)
	bin3, _, hit3, err := cache.Build(other, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hit3 {
		t.Error("a program with different options must miss the cache")
	}
	if bin3 == bin1 {
		t.Error("distinct programs share a cached binary path")
	}

	if res, err := harness.Run(bin2, harness.RunOptions{Steps: 5}); err != nil || res.Steps != 5 {
		t.Fatalf("cached binary does not run: %v %+v", err, res)
	}
}

func TestBuildCacheConcurrentSingleFlight(t *testing.T) {
	cache := harness.NewBuildCache(t.TempDir())
	defer cache.Remove()

	p := cacheProgram(t, 100)
	const n = 8
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		bins   = map[string]bool{}
		misses int
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bin, _, hit, err := cache.Build(p, nil)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			bins[bin] = true
			if !hit {
				misses++
			}
		}()
	}
	wg.Wait()
	if misses != 1 {
		t.Errorf("%d goroutines compiled; single-flight should compile exactly once", misses)
	}
	if len(bins) != 1 {
		t.Errorf("concurrent builds returned %d distinct binaries: %v", len(bins), bins)
	}
}

func TestBuildCacheRevalidatesDeletedBinary(t *testing.T) {
	cache := harness.NewBuildCache(t.TempDir())
	defer cache.Remove()

	p := cacheProgram(t, 100)
	bin, _, _, err := cache.Build(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(bin); err != nil {
		t.Fatal(err)
	}
	bin2, _, hit, err := cache.Build(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("a deleted binary must not count as a hit")
	}
	if _, err := os.Stat(bin2); err != nil {
		t.Fatalf("rebuild did not restore the binary: %v", err)
	}
}

func TestBuildCacheCachesCompileErrors(t *testing.T) {
	cache := harness.NewBuildCache(t.TempDir())
	defer cache.Remove()

	p := &codegen.Program{Model: "BADC", Source: "package main\nfunc main() { undefined() }\n"}
	_, _, _, err1 := cache.Build(p, nil)
	if err1 == nil {
		t.Fatal("broken source must fail")
	}
	_, _, _, err2 := cache.Build(p, nil)
	if err2 == nil {
		t.Fatal("cached failure must still fail")
	}
	if !strings.Contains(err2.Error(), "undefined") {
		t.Errorf("cached error lost its diagnostics: %v", err2)
	}
}

func TestBuildCacheLRUEvictionAndStats(t *testing.T) {
	cache := harness.NewBuildCache(t.TempDir())
	defer cache.Remove()
	cache.SetLimit(2)

	p1 := cacheProgram(t, 100)
	p2 := cacheProgram(t, 200)
	p3 := cacheProgram(t, 300)

	bin1, _, _, err := cache.Build(p1, nil)
	if err != nil {
		t.Fatal(err)
	}
	bin2, _, _, err := cache.Build(p2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Touch p1 so p2 becomes the least recently used.
	if _, _, hit, err := cache.Build(p1, nil); err != nil || !hit {
		t.Fatalf("touching p1: hit=%v err=%v", hit, err)
	}
	// Inserting p3 overflows the limit and must evict p2 — including its
	// artifacts on disk.
	if _, _, _, err := cache.Build(p3, nil); err != nil {
		t.Fatal(err)
	}

	st := cache.Stats()
	if st.Entries != 2 || st.Limit != 2 {
		t.Errorf("stats after eviction: %+v, want 2 entries / limit 2", st)
	}
	if st.Hits != 1 || st.Misses != 3 || st.Evictions != 1 {
		t.Errorf("counters: %+v, want hits 1 / misses 3 / evictions 1", st)
	}
	if got, want := st.HitRate(), 0.25; got != want {
		t.Errorf("hit rate %v, want %v", got, want)
	}
	if _, err := os.Stat(bin2); !os.IsNotExist(err) {
		t.Errorf("evicted binary still on disk: %v", err)
	}
	if _, err := os.Stat(bin1); err != nil {
		t.Errorf("retained binary removed: %v", err)
	}

	// The evicted program rebuilds as a miss and evicts the new LRU (p1).
	if _, _, hit, err := cache.Build(p2, nil); err != nil || hit {
		t.Fatalf("rebuilding evicted p2: hit=%v err=%v", hit, err)
	}
	st = cache.Stats()
	if st.Misses != 4 || st.Evictions != 2 {
		t.Errorf("counters after rebuild: %+v, want misses 4 / evictions 2", st)
	}
	if _, err := os.Stat(bin1); !os.IsNotExist(err) {
		t.Errorf("p1 should be the second eviction: %v", err)
	}
}

func TestBuildCacheSetLimitShrinksImmediately(t *testing.T) {
	cache := harness.NewBuildCache(t.TempDir())
	defer cache.Remove()

	for _, steps := range []int64{100, 200, 300} {
		if _, _, _, err := cache.Build(cacheProgram(t, steps), nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Entries != 3 || st.Limit != 0 {
		t.Fatalf("unbounded cache stats: %+v", st)
	}
	cache.SetLimit(1)
	st := cache.Stats()
	if st.Entries != 1 || st.Evictions != 2 {
		t.Errorf("after SetLimit(1): %+v, want 1 entry / 2 evictions", st)
	}
}

func TestBuildCacheRemoveResetsEntriesKeepsCounters(t *testing.T) {
	cache := harness.NewBuildCache(t.TempDir())
	if _, _, _, err := cache.Build(cacheProgram(t, 100), nil); err != nil {
		t.Fatal(err)
	}
	cache.Remove()
	st := cache.Stats()
	if st.Entries != 0 {
		t.Errorf("entries survived Remove: %+v", st)
	}
	if st.Misses != 1 {
		t.Errorf("counters should survive Remove: %+v", st)
	}
}

func TestBuildCacheExportImportRoundTrip(t *testing.T) {
	src := harness.NewBuildCache(t.TempDir())
	defer src.Remove()

	p := cacheProgram(t, 100)
	key := p.Hash()
	if src.Has(key) {
		t.Fatal("Has reported an artifact before any build")
	}
	if _, _, _, err := src.Build(p, nil); err != nil {
		t.Fatal(err)
	}
	if !src.Has(key) {
		t.Fatal("Has does not see the completed build")
	}
	data, digest, err := src.Export(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || len(digest) != 64 {
		t.Fatalf("export returned %d bytes, digest %q", len(data), digest)
	}

	// A fresh cache (the receiving node) imports the shipped binary and
	// serves it as a hit: the next Build of the identical program pays no
	// compile, and the binary actually runs.
	dst := harness.NewBuildCache(t.TempDir())
	defer dst.Remove()
	if err := dst.Import(key, digest, data); err != nil {
		t.Fatal(err)
	}
	if !dst.Has(key) {
		t.Fatal("imported artifact is not visible to Has")
	}
	bin, _, hit, err := dst.Build(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("Build after Import did not hit the cache")
	}
	if res, err := harness.Run(bin, harness.RunOptions{Steps: 7}); err != nil || res.Steps != 7 {
		t.Fatalf("imported binary does not run: %v %+v", err, res)
	}

	// Round trip through wipe: exporting from the importer reproduces the
	// exact bytes.
	data2, digest2, err := dst.Export(key)
	if err != nil {
		t.Fatal(err)
	}
	if digest2 != digest || len(data2) != len(data) {
		t.Errorf("re-export diverged: %s (%d bytes) vs %s (%d bytes)", digest2, len(data2), digest, len(data))
	}
}

func TestBuildCacheImportRejectsCorruption(t *testing.T) {
	src := harness.NewBuildCache(t.TempDir())
	defer src.Remove()
	p := cacheProgram(t, 100)
	key := p.Hash()
	if _, _, _, err := src.Build(p, nil); err != nil {
		t.Fatal(err)
	}
	data, digest, err := src.Export(key)
	if err != nil {
		t.Fatal(err)
	}

	dst := harness.NewBuildCache(t.TempDir())
	defer dst.Remove()

	// Flipped byte: the digest no longer matches and the import must be
	// rejected without installing anything.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0xff
	if err := dst.Import(key, digest, corrupt); err == nil {
		t.Fatal("corrupted payload was accepted")
	} else if !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("unexpected rejection: %v", err)
	}
	// Truncation is corruption too.
	if err := dst.Import(key, digest, data[:len(data)-1]); err == nil {
		t.Fatal("truncated payload was accepted")
	}
	// A lying digest never installs either.
	if err := dst.Import(key, strings.Repeat("0", 64), data); err == nil {
		t.Fatal("wrong digest was accepted")
	}
	if dst.Has(key) {
		t.Fatal("a rejected import left an entry behind")
	}

	// The happy path still works afterwards.
	if err := dst.Import(key, digest, data); err != nil {
		t.Fatal(err)
	}
	if !dst.Has(key) {
		t.Fatal("valid import after rejections failed")
	}
}

func TestBuildCacheExportUnknownKey(t *testing.T) {
	c := harness.NewBuildCache(t.TempDir())
	defer c.Remove()
	if _, _, err := c.Export("deadbeef"); err == nil {
		t.Fatal("export of an unknown key succeeded")
	}
	if c.Has("deadbeef") {
		t.Fatal("Has invented an artifact")
	}
}
