//go:build unix

package harness

import (
	"os/exec"
	"syscall"
)

// setProcGroup places the child in its own process group, so cancellation
// can kill the whole tree a generated binary may have spawned — not just
// the immediate child, which would leave grandchildren holding the stderr
// pipe open and the harness blocked on EOF.
func setProcGroup(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// killProcGroup force-kills the child's process group, falling back to
// the single process if the group signal fails (e.g. the group leader
// already exited). Safe to call concurrently with cmd.Wait.
func killProcGroup(cmd *exec.Cmd) {
	p := cmd.Process
	if p == nil {
		return
	}
	if err := syscall.Kill(-p.Pid, syscall.SIGKILL); err != nil {
		p.Kill()
	}
}
