package irjson

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/benchmodels"
	"accmos/internal/interp"
	"accmos/internal/model"
	"accmos/internal/testcase"
)

func TestRoundTripBenchmarkModel(t *testing.T) {
	m := benchmodels.MustBuild("CSEV")
	doc := FromModel(m)
	var buf bytes.Buffer
	if err := Encode(&buf, doc); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := back.ToModel()
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Actors) != len(m.Actors) || len(m2.Connections) != len(m.Connections) {
		t.Fatalf("shape lost: %d/%d actors, %d/%d connections",
			len(m2.Actors), len(m.Actors), len(m2.Connections), len(m.Connections))
	}
	// Behavioural equivalence through the interpreter.
	run := func(mm *model.Model) uint64 {
		c, err := actors.Compile(mm)
		if err != nil {
			t.Fatal(err)
		}
		e, err := interp.New(c, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(testcase.NewRandomSet(len(c.Inports), 3, -50, 50), 500)
		if err != nil {
			t.Fatal(err)
		}
		return res.OutputHash
	}
	if run(m) != run(m2) {
		t.Error("IR round trip changed behaviour")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	m := benchmodels.Figure1Model()
	if err := WriteModelFile(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != m.Name || len(back.Actors) != len(m.Actors) {
		t.Errorf("lost shape: %s %d", back.Name, len(back.Actors))
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	// Strict decoding catches importer schema drift early.
	if _, err := Decode(strings.NewReader(`{"name":"M","nodes":[],"edges":[],"bogus":1}`)); err == nil {
		t.Fatal("unknown field must be rejected")
	}
}

func TestToModelValidation(t *testing.T) {
	bad := []*Document{
		{}, // no name
		{Name: "M", Nodes: []Node{{ID: "A", Kind: "Gain", In: -1, Out: 1}}},
		{Name: "M", Nodes: []Node{{ID: "A", Kind: "Constant", Out: 1}, {ID: "A", Kind: "Constant", Out: 1}}},
		{Name: "M", Edges: []Edge{{From: "x", To: "y"}}},
	}
	for i, d := range bad {
		if _, err := d.ToModel(); err == nil {
			t.Errorf("bad[%d] must fail", i)
		}
	}
}

func TestHandAuthoredPtolemyStyleDocument(t *testing.T) {
	// A document such as a Ptolemy-II importer would emit: actor classes
	// mapped onto the shared kind vocabulary.
	src := `{
	  "name": "PTOL",
	  "nodes": [
	    {"id": "clock", "kind": "Ramp", "group": "sources", "in": 0, "out": 1,
	     "params": {"Slope": "0.5"}},
	    {"id": "scale", "kind": "Gain", "group": "arith", "in": 1, "out": 1,
	     "params": {"Gain": "2"}},
	    {"id": "display", "kind": "Outport", "in": 1, "out": 0,
	     "params": {"Port": "1"}}
	  ],
	  "edges": [
	    {"from": "clock", "fromPort": 0, "to": "scale", "toPort": 0},
	    {"from": "scale", "fromPort": 0, "to": "display", "toPort": 0}
	  ]
	}`
	doc, err := Decode(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	m, err := doc.ToModel()
	if err != nil {
		t.Fatal(err)
	}
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	e, err := interp.New(c, interp.Options{Monitor: []string{"scale"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(&testcase.Set{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0", "1", "2"} // 2 * 0.5 * step
	for i, w := range want {
		if res.Monitor["scale"][i].Value != w {
			t.Errorf("step %d = %s, want %s", i, res.Monitor["scale"][i].Value, w)
		}
	}
}

// FuzzDecode hardens the IR parser the same way as the slx fuzzer.
func FuzzDecode(f *testing.F) {
	var seed bytes.Buffer
	if err := Encode(&seed, FromModel(benchmodels.Figure1Model())); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"name":"M","nodes":[],"edges":[]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		m, err := doc.ToModel()
		if err != nil {
			return
		}
		_, _ = actors.Compile(m)
	})
}
