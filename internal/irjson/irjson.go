// Package irjson implements the paper's §5 extensibility proposal: a
// well-structured intermediate representation that lets other model-driven
// tools (Ptolemy-II, SCADE, Tsmart, ...) feed the AccMoS pipeline. The IR
// is a flat JSON document of typed nodes and directed edges; importers for
// other tools only need to emit this document — everything downstream
// (scheduling, instrumentation, code generation) is shared.
package irjson

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"accmos/internal/model"
)

// Document is the interchange IR.
type Document struct {
	// Name is the model name.
	Name string `json:"name"`
	// Nodes are the computation nodes (actors/blocks).
	Nodes []Node `json:"nodes"`
	// Edges are the dataflow connections.
	Edges []Edge `json:"edges"`
}

// Node is one computation node.
type Node struct {
	ID string `json:"id"`
	// Kind is the actor type in the shared registry vocabulary ("Sum",
	// "UnitDelay", ...). Importers map their tool's block names onto it.
	Kind string `json:"kind"`
	// Op is the optional operator ("+-", "AND", "rk4", ...).
	Op string `json:"op,omitempty"`
	// Group is an optional hierarchical grouping label (subsystem,
	// composite actor, SCADE node).
	Group string `json:"group,omitempty"`
	// In and Out are the port counts.
	In  int `json:"in"`
	Out int `json:"out"`
	// Params carries node configuration verbatim.
	Params map[string]string `json:"params,omitempty"`
}

// Edge is one dataflow connection between node ports.
type Edge struct {
	From     string `json:"from"`
	FromPort int    `json:"fromPort"`
	To       string `json:"to"`
	ToPort   int    `json:"toPort"`
}

// FromModel converts a model into the interchange IR.
func FromModel(m *model.Model) *Document {
	doc := &Document{Name: m.Name}
	for _, a := range m.Actors {
		n := Node{
			ID:    a.Name,
			Kind:  string(a.Type),
			Op:    a.Operator,
			Group: a.Subsystem,
			In:    len(a.Inputs),
			Out:   len(a.Outputs),
		}
		if len(a.Params) > 0 {
			n.Params = make(map[string]string, len(a.Params))
			for k, v := range a.Params {
				n.Params[k] = v
			}
		}
		doc.Nodes = append(doc.Nodes, n)
	}
	for _, c := range m.Connections {
		doc.Edges = append(doc.Edges, Edge{
			From: c.SrcActor, FromPort: c.SrcPort,
			To: c.DstActor, ToPort: c.DstPort,
		})
	}
	return doc
}

// ToModel converts the IR into a model ready for actors.Compile.
func (doc *Document) ToModel() (*model.Model, error) {
	if doc.Name == "" {
		return nil, fmt.Errorf("irjson: document has no name")
	}
	m := model.New(doc.Name)
	for _, n := range doc.Nodes {
		if n.In < 0 || n.Out < 0 || n.In > 1024 || n.Out > 1024 {
			return nil, fmt.Errorf("irjson: node %q has implausible port counts", n.ID)
		}
		a := &model.Actor{
			Name:      n.ID,
			Type:      model.ActorType(n.Kind),
			Operator:  n.Op,
			Subsystem: n.Group,
		}
		for i := 0; i < n.In; i++ {
			a.Inputs = append(a.Inputs, model.Port{Name: fmt.Sprintf("in%d", i+1)})
		}
		for i := 0; i < n.Out; i++ {
			a.Outputs = append(a.Outputs, model.Port{Name: fmt.Sprintf("out%d", i+1)})
		}
		keys := make([]string, 0, len(n.Params))
		for k := range n.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			a.SetParam(k, n.Params[k])
		}
		if err := m.AddActor(a); err != nil {
			return nil, fmt.Errorf("irjson: %w", err)
		}
	}
	for _, e := range doc.Edges {
		m.Connect(e.From, e.FromPort, e.To, e.ToPort)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("irjson: %w", err)
	}
	return m, nil
}

// Encode writes the IR as indented JSON.
func Encode(w io.Writer, doc *Document) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Decode parses an IR document.
func Decode(r io.Reader) (*Document, error) {
	var doc Document
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("irjson: %w", err)
	}
	return &doc, nil
}

// ReadModelFile loads a JSON IR file directly into a model.
func ReadModelFile(path string) (*model.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("irjson: %w", err)
	}
	defer f.Close()
	doc, err := Decode(f)
	if err != nil {
		return nil, err
	}
	return doc.ToModel()
}

// WriteModelFile saves a model as a JSON IR file.
func WriteModelFile(path string, m *model.Model) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("irjson: %w", err)
	}
	defer f.Close()
	if err := Encode(f, FromModel(m)); err != nil {
		return err
	}
	return f.Close()
}
