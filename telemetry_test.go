package accmos_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	accmos "accmos"
	"accmos/internal/obs"
)

// simulatePhases is the span contract for one accmos.Simulate call: each
// pipeline phase after parsing appears exactly once in the trace.
var simulatePhases = []string{"schedule", "instrument", "generate", "compile", "run"}

func TestSimulateTracesEveryPhaseOnce(t *testing.T) {
	m := demoModel()
	tracer := accmos.NewTracer()
	opts := accmos.Options{
		Steps:     500,
		Coverage:  true,
		TestCases: accmos.RandomTestCases(m, 3, -10, 10),
		Trace:     tracer,
	}
	if _, err := accmos.Simulate(m, opts); err != nil {
		t.Fatal(err)
	}
	tr := tracer.Trace()
	for _, phase := range simulatePhases {
		spans := tr.Find(phase)
		if len(spans) != 1 {
			t.Errorf("phase %q recorded %d times, want 1", phase, len(spans))
			continue
		}
		if spans[0].Duration() <= 0 {
			t.Errorf("phase %q has no duration: %+v", phase, spans[0])
		}
	}
}

func TestInterpretTracesScheduleAndRun(t *testing.T) {
	m := demoModel()
	tracer := accmos.NewTracer()
	opts := accmos.Options{
		Steps:     500,
		TestCases: accmos.RandomTestCases(m, 3, -10, 10),
		Trace:     tracer,
	}
	if _, err := accmos.Interpret(m, opts); err != nil {
		t.Fatal(err)
	}
	tr := tracer.Trace()
	for _, phase := range []string{"schedule", "run"} {
		if n := len(tr.Find(phase)); n != 1 {
			t.Errorf("phase %q recorded %d times, want 1", phase, n)
		}
	}
	for _, phase := range []string{"instrument", "generate", "compile"} {
		if n := len(tr.Find(phase)); n != 0 {
			t.Errorf("interpreter must not record codegen phase %q (%d spans)", phase, n)
		}
	}
}

func TestTraceJSONRoundTripsThroughFacade(t *testing.T) {
	m := demoModel()
	tracer := accmos.NewTracer()
	opts := accmos.Options{
		Steps:     200,
		TestCases: accmos.RandomTestCases(m, 3, -10, 10),
		Trace:     tracer,
	}
	if _, err := accmos.Simulate(m, opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded obs.Trace
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v\n%s", err, buf.String())
	}
	for _, phase := range simulatePhases {
		if len(decoded.Find(phase)) != 1 {
			t.Errorf("decoded trace lost phase %q", phase)
		}
	}
}

func TestSimulateProgressTimeline(t *testing.T) {
	m := demoModel()
	var seen []accmos.Snapshot
	opts := accmos.Options{
		Steps:         2_000_000,
		Coverage:      true,
		TestCases:     accmos.RandomTestCases(m, 3, -10, 10),
		Progress:      func(s accmos.Snapshot) { seen = append(seen, s) },
		ProgressEvery: time.Millisecond,
	}
	res, err := accmos.Simulate(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("Simulate with Progress set produced no timeline")
	}
	if len(seen) != len(res.Timeline) {
		t.Errorf("callback saw %d snapshots, timeline has %d", len(seen), len(res.Timeline))
	}
	last := res.Timeline[len(res.Timeline)-1]
	if !last.Final || last.Steps != res.Steps {
		t.Errorf("final snapshot: %+v (result steps %d)", last, res.Steps)
	}
}

func TestInProcessEnginesProgressTimeline(t *testing.T) {
	m := demoModel()
	for _, tc := range []struct {
		engine string
		run    func(*accmos.Model, accmos.Options) (*accmos.Result, error)
	}{
		{"SSE", accmos.Interpret},
		{"SSEac", accmos.Accelerate},
		{"SSErac", accmos.RapidAccelerate},
	} {
		opts := accmos.Options{
			Steps:         100_000,
			TestCases:     accmos.RandomTestCases(m, 3, -10, 10),
			ProgressEvery: time.Millisecond,
		}
		res, err := tc.run(m, opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.engine, err)
		}
		if len(res.Timeline) == 0 {
			t.Errorf("%s: no progress timeline", tc.engine)
			continue
		}
		last := res.Timeline[len(res.Timeline)-1]
		if !last.Final || last.Engine != tc.engine {
			t.Errorf("%s: final snapshot %+v", tc.engine, last)
		}
		for i := 1; i < len(res.Timeline); i++ {
			if res.Timeline[i].Steps < res.Timeline[i-1].Steps {
				t.Errorf("%s: steps regressed at snapshot %d", tc.engine, i)
			}
		}
	}
}
