// Command accmos runs the full AccMoS pipeline on a model file: parse,
// elaborate, instrument, generate code, compile, execute, and report
// simulation results (coverage, diagnostics, timing).
//
// Usage:
//
//	accmos -model m.xml -steps 1000000 -coverage -diagnose
//	accmos -model m.xml -engine sse          # reference interpreter
//	accmos -model m.xml -gen > main.go       # inspect generated code
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	accmos "accmos"
	"accmos/internal/diagnose"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model file (required)")
		engine    = flag.String("engine", "accmos", "engine: accmos | sse | accel | rapid")
		steps     = flag.Int64("steps", 100000, "simulation steps")
		budgetMS  = flag.Int64("budget-ms", 0, "wall-clock budget in ms (overrides -steps)")
		coverage  = flag.Bool("coverage", true, "collect coverage")
		diag      = flag.Bool("diagnose", true, "run calculation diagnosis")
		monitor   = flag.String("monitor", "", "comma-separated actor names to signal-monitor")
		stopOn    = flag.String("stop-on", "", "stop when this diagnosis kind first fires (e.g. WrapOnOverflow)")
		stopActor = flag.String("stop-actor", "", "narrow -stop-on to this actor path")
		seed      = flag.Uint64("seed", 1, "test-case seed")
		lo        = flag.Float64("lo", -100, "random stimulus lower bound")
		hi        = flag.Float64("hi", 100, "random stimulus upper bound")
		genOnly   = flag.Bool("gen", false, "print the generated simulation program and exit")
		workDir   = flag.String("workdir", "", "keep generated artifacts in this directory")
		tcCSV     = flag.String("tc-csv", "", "load test cases from a CSV file (one column per inport)")
		uncovered = flag.Bool("uncovered", false, "list the coverage points the run missed")
		jsonOut   = flag.Bool("json", false, "emit the raw results as JSON instead of the summary")
		verify    = flag.Bool("verify", false, "also run the reference interpreter and cross-check outputs")
		lintOnly  = flag.Bool("lint", false, "run the static model checks and exit")
		partsFlag = flag.String("partitions", "0", "pipeline the generated step loop across N goroutine partitions: 0 or 1 = sequential, N >= 2 = request an N-way cut, auto = pick from GOMAXPROCS (generated engine only; results stay bit-identical)")
		optLevel  = flag.Int("O", 1, "optimization level: 0 = off, 1 = constant folding + CSE + dead-actor elimination, 2 = O1 + expression fusion, invariant hoisting, storage narrowing")
		sweep     = flag.Int("sweep", 0, "run N random test suites against one compiled binary, merging coverage")
		parallel  = flag.Int("parallel", 0, "concurrent suite executions for -sweep (0 = GOMAXPROCS, 1 = sequential)")
		workers   = flag.Int("workers", 0, "warm serve-mode worker processes for -sweep: suites reuse up to N live binaries instead of spawning one process per run (0 = spawn per run)")
		noBatch   = flag.Bool("no-batch", false, "disable lane-vectorized batch execution for -sweep (one request per suite; results are bit-identical)")
		timeout   = flag.Duration("timeout", 0, "kill a generated-binary run exceeding this wall-clock deadline, e.g. 30s (0 = none)")
		progress  = flag.Bool("progress", false, "show a live progress line (steps/sec, coverage) on stderr")
		traceJSON = flag.String("trace-json", "", "write the pipeline phase trace (parse/schedule/instrument/generate/compile/run) as JSON to this file")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for live profiling")
	)
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "accmos: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	if *pprofAddr != "" {
		go func() {
			fmt.Fprintln(os.Stderr, "accmos: pprof:", http.ListenAndServe(*pprofAddr, nil))
		}()
	}
	var tracer *accmos.Tracer
	if *traceJSON != "" {
		tracer = accmos.NewTracer()
		defer func() {
			f, err := os.Create(*traceJSON)
			if err != nil {
				fatal(err)
			}
			if err := tracer.WriteJSON(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "accmos: phase trace written to %s\n%s", *traceJSON, tracer.Summary())
		}()
	}
	parseSpan := tracer.Start("parse")
	m, err := accmos.LoadModel(*modelPath)
	parseSpan.End()
	if err != nil {
		fatal(err)
	}
	if *lintOnly {
		findings, err := accmos.Lint(m)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("lint: %d finding(s) in %s\n", len(findings), m.Name)
		for _, f := range findings {
			fmt.Println(" ", f)
		}
		if len(findings) > 0 {
			os.Exit(1)
		}
		return
	}

	tcs := accmos.RandomTestCases(m, *seed, *lo, *hi)
	if *tcCSV != "" {
		tcs, err = accmos.CSVTestCases(*tcCSV)
		if err != nil {
			fatal(err)
		}
	}
	level, err := accmos.OptLevelFromInt(*optLevel)
	if err != nil {
		fatal(err)
	}
	partitions, err := parsePartitions(*partsFlag)
	if err != nil {
		fatal(err)
	}
	opts := accmos.Options{
		OptLevel:     level,
		Partitions:   partitions,
		Steps:        *steps,
		Budget:       time.Duration(*budgetMS) * time.Millisecond,
		Coverage:     *coverage,
		Diagnose:     *diag,
		StopOnDiag:   diagnose.Kind(*stopOn),
		StopOnActor:  *stopActor,
		TestCases:    tcs,
		WorkDir:      *workDir,
		Timeout:      *timeout,
		Parallelism:  *parallel,
		Workers:      *workers,
		DisableBatch: *noBatch,
		Trace:        tracer,
	}
	if *monitor != "" {
		opts.Monitor = strings.Split(*monitor, ",")
	}
	// Every invocation gets a correlation ID: heartbeats, trace spans and
	// harness errors all carry it, so one run's telemetry is joinable
	// (the daemon uses its job IDs the same way).
	runID := accmos.NewRunID()
	opts.RunID = runID
	if *progress {
		opts.Progress = liveProgressLine
		fmt.Fprintf(os.Stderr, "accmos: run %s\n", runID)
	}
	if *genOnly {
		src, err := accmos.GenerateSource(m, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(src)
		return
	}

	if *sweep > 0 {
		xors := make([]uint64, *sweep)
		for i := range xors {
			xors[i] = uint64(i) * 0x9E3779B97F4A7C15
		}
		// Own the worker pool here (instead of Options.Workers handing its
		// lifetime to Sweep) so the final telemetry line can report its
		// reuse ratio.
		var pool *accmos.WorkerPool
		if *workers > 0 {
			pool = accmos.NewWorkerPool(*workers)
			defer pool.Close()
			opts.Pool = pool
		}
		sw, err := accmos.Sweep(m, opts, xors)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sweep: %d random suites x %d steps on %s\n", *sweep, opts.Steps, m.Name)
		for i, run := range sw.Runs {
			if run == nil { // suites cancelled mid-sweep leave nil slots
				continue
			}
			if run.Results.Coverage == nil {
				// Batched lanes report coverage only in the merged
				// record below; -no-batch restores per-suite detail.
				fmt.Printf("  suite %2d: (batched)  %v\n", i, time.Duration(run.ExecNanos))
				continue
			}
			rep := run.CoverageReport()
			fmt.Printf("  suite %2d: actor %5.1f%%  cond %5.1f%%  dec %5.1f%%  mc/dc %5.1f%%  (%v)\n",
				i, rep.Actor, rep.Cond, rep.Dec, rep.MCDC, time.Duration(run.ExecNanos))
		}
		merged := sw.MergedCoverage()
		fmt.Printf("  merged:   actor %5.1f%%  cond %5.1f%%  dec %5.1f%%  mc/dc %5.1f%%\n",
			merged.Actor, merged.Cond, merged.Dec, merged.MCDC)
		if *workers > 0 {
			warm := 0
			for _, run := range sw.Runs {
				if run == nil {
					continue
				}
				if run.WorkerReuse {
					warm++
				}
			}
			fmt.Printf("  workers:  %d of %d suites served by a warm worker\n", warm, len(sw.Runs))
		}
		if *uncovered {
			missed := sw.MergedUncovered()
			fmt.Printf("uncovered by every suite: %d\n", len(missed))
			for _, line := range missed {
				fmt.Printf("  %s\n", line)
			}
		}
		if *progress {
			fmt.Fprintln(os.Stderr, telemetrySummary(runID, *workDir == "", pool))
		}
		return
	}

	var res *accmos.Result
	switch *engine {
	case "accmos":
		res, err = accmos.Simulate(m, opts)
	case "sse":
		res, err = accmos.Interpret(m, opts)
	case "accel":
		res, err = accmos.Accelerate(m, opts)
	case "rapid":
		res, err = accmos.RapidAccelerate(m, opts)
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	if err != nil {
		fatal(err)
	}
	if *progress {
		fmt.Fprintln(os.Stderr, telemetrySummary(runID, *workDir == "" && *engine == "accmos", nil))
	}

	if *jsonOut {
		b, err := json.MarshalIndent(res.Results, "", "  ")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(b)
		os.Stdout.Write([]byte("\n"))
		return
	}

	st := m.Stats()
	fmt.Printf("model:    %s (%d actors, %d subsystems)\n", m.Name, st.Actors, st.Subsystems)
	fmt.Printf("engine:   %s\n", res.Engine)
	if o := res.Opt; o != nil {
		fmt.Printf("opt:      %s, %d -> %d actors", o.Level, o.ActorsBefore, o.ActorsAfter)
		for _, p := range o.Passes {
			fmt.Printf("  %s:%d", p.Pass, p.Changed)
		}
		fmt.Println()
		if o.FusedExprs > 0 || o.HoistedExprs > 0 || o.NarrowedSignals > 0 {
			fmt.Printf("lower:    %d fused, %d hoisted, %d narrowed (%d effective actors)\n",
				o.FusedExprs, o.HoistedExprs, o.NarrowedSignals, o.EffectiveActors)
		}
	}
	if p := res.Part; p != nil {
		if p.Usable >= 2 {
			fmt.Printf("partition: %d-way (requested %d), %d cut signals, balance %.2f\n",
				p.Usable, p.Requested, p.CutEdges, p.Balance)
		} else {
			fmt.Printf("partition: sequential (%s)\n", p.Declined)
		}
	}
	fmt.Printf("steps:    %d\n", res.Steps)
	fmt.Printf("exec:     %v\n", time.Duration(res.ExecNanos))
	// Normalize wall time by scheduled work. At O2 the denominator is the
	// post-fusion statement count (EffectiveActors): fused actors emit no
	// step-loop statement of their own, so counting them would make O2
	// look artificially fast per actor.
	if res.Steps > 0 && res.Opt != nil && res.Opt.EffectiveActors > 0 {
		fmt.Printf("perf:     %.1f ns/actor-step\n",
			float64(res.ExecNanos)/float64(res.Steps)/float64(res.Opt.EffectiveActors))
	}
	if res.CompileNanos > 0 {
		fmt.Printf("compile:  %v\n", time.Duration(res.CompileNanos))
	}
	fmt.Printf("out hash: %016x\n", res.OutputHash)
	if res.Results.Coverage != nil {
		rep := res.CoverageReport()
		fmt.Printf("coverage: actor %.1f%%  condition %.1f%%  decision %.1f%%  MC/DC %.1f%%\n",
			rep.Actor, rep.Cond, rep.Dec, rep.MCDC)
	}
	if res.DiagTotal > 0 {
		fmt.Printf("diagnostics: %d findings\n", res.DiagTotal)
		for _, line := range res.DiagSummary() {
			fmt.Printf("  %s\n", line)
		}
	} else if *diag && *engine != "accel" && *engine != "rapid" {
		fmt.Println("diagnostics: none")
	}
	for name, samples := range res.Monitor {
		fmt.Printf("monitor %s (%d hits):\n", name, res.MonitorHits[name])
		for _, s := range samples {
			fmt.Printf("  step %d: %s\n", s.Step, s.Value)
		}
	}
	if *uncovered {
		missed := res.Uncovered()
		fmt.Printf("uncovered points: %d\n", len(missed))
		for _, line := range missed {
			fmt.Printf("  %s\n", line)
		}
	}
	if *verify && *engine != "sse" {
		ref, err := accmos.Interpret(m, opts)
		if err != nil {
			fatal(err)
		}
		switch {
		case ref.OutputHash != res.OutputHash:
			fatal(fmt.Errorf("VERIFY FAILED: interpreter hash %016x != %016x", ref.OutputHash, res.OutputHash))
		case ref.Steps != res.Steps:
			fatal(fmt.Errorf("VERIFY FAILED: interpreter ran %d steps vs %d", ref.Steps, res.Steps))
		case ref.DiagTotal != res.DiagTotal && *diag && *engine == "accmos":
			fatal(fmt.Errorf("VERIFY FAILED: interpreter found %d diagnostics vs %d", ref.DiagTotal, res.DiagTotal))
		default:
			fmt.Printf("verify:   interpreter agrees (%d steps, hash %016x, %v)\n",
				ref.Steps, ref.OutputHash, time.Duration(ref.ExecNanos))
		}
	}
}

// liveProgressLine rewrites one stderr status line per progress snapshot
// (generated-binary heartbeats, or engine ticks for sse/accel/rapid).
func liveProgressLine(s accmos.Snapshot) {
	cov := ""
	if s.Coverage >= 0 {
		cov = fmt.Sprintf("  cov %5.1f%%", s.Coverage)
	}
	fmt.Fprintf(os.Stderr, "\r%s %s: %d steps  %.3g steps/s%s  diags %d  (%v)   ",
		s.Engine, s.Model, s.Steps, s.StepsPerSec, cov, s.Diags,
		s.Elapsed().Round(time.Millisecond))
	if s.Final {
		fmt.Fprintln(os.Stderr)
	}
}

// telemetrySummary renders the final -progress line: the run's
// correlation ID, the build cache's hit rate (when the run went through
// it), and the worker pool's reuse ratio (when one served the run).
func telemetrySummary(runID string, usedCache bool, pool *accmos.WorkerPool) string {
	line := "accmos: run " + runID
	if usedCache {
		cs := accmos.DefaultBuildCache().Stats()
		line += fmt.Sprintf("  cache %d hit / %d miss (%.0f%% hit rate)", cs.Hits, cs.Misses, cs.HitRate()*100)
	}
	if pool != nil {
		ws := pool.Stats()
		line += fmt.Sprintf("  workers %d reused / %d spawned (%.0f%% reuse)", ws.Reuses, ws.Spawns, ws.ReuseRatio()*100)
	}
	return line
}

// parsePartitions maps the -partitions flag to Options.Partitions:
// "auto" resolves at generation time from GOMAXPROCS; 0 and 1 mean
// sequential.
func parsePartitions(s string) (int, error) {
	if s == "auto" {
		return accmos.PartitionsAuto, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid -partitions %q (want 0, 1, N >= 2 or auto)", s)
	}
	return n, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "accmos:", err)
	os.Exit(1)
}
