// Command ssesim runs the reference step-by-step interpreted simulation
// (the SSE baseline) on a model file. It exists as a separate tool so the
// baseline can be scripted exactly like the accelerated pipeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	accmos "accmos"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model file (required)")
		steps     = flag.Int64("steps", 100000, "simulation steps")
		budgetMS  = flag.Int64("budget-ms", 0, "wall-clock budget in ms (overrides -steps)")
		coverage  = flag.Bool("coverage", true, "collect coverage")
		diag      = flag.Bool("diagnose", true, "run calculation diagnosis")
		seed      = flag.Uint64("seed", 1, "test-case seed")
	)
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "ssesim: -model is required")
		os.Exit(2)
	}
	m, err := accmos.LoadModel(*modelPath)
	if err != nil {
		fatal(err)
	}
	res, err := accmos.Interpret(m, accmos.Options{
		Steps:     *steps,
		Budget:    time.Duration(*budgetMS) * time.Millisecond,
		Coverage:  *coverage,
		Diagnose:  *diag,
		TestCases: accmos.RandomTestCases(m, *seed, -100, 100),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model: %s  steps: %d  exec: %v  hash: %016x\n",
		m.Name, res.Steps, time.Duration(res.ExecNanos), res.OutputHash)
	if res.Results.Coverage != nil {
		rep := res.CoverageReport()
		fmt.Printf("coverage: actor %.1f%% condition %.1f%% decision %.1f%% MC/DC %.1f%%\n",
			rep.Actor, rep.Cond, rep.Dec, rep.MCDC)
	}
	for _, line := range res.DiagSummary() {
		fmt.Println(" ", line)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssesim:", err)
	os.Exit(1)
}
