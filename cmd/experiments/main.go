// Command experiments regenerates the paper's evaluation artifacts:
//
//	experiments -run table2     # Table 2: simulation time, 4 engines x 10 models
//	experiments -run table3     # Table 3: coverage within equal budgets
//	experiments -run opt        # optimizing middle-end: O0 vs O1 vs O2 on all engines
//	experiments -run serve      # worker pool: spawn-per-run vs warm serve-mode workers
//	experiments -run batch      # batched lanes: per-run serve frames vs one batch request
//	experiments -run fleet      # fleet scaling: 1 vs 2 vs 4 runners behind a coordinator
//	experiments -run partition  # pipelined step loop: sequential vs K-way goroutine partitions
//	experiments -run casestudy  # §4 error-injection study on CSEV
//	experiments -run figure1    # Figure 1 motivating measurement
//	experiments -run all
//
// Scales default to laptop-size runs; raise -steps / -budget-scale to
// approach the paper's setting (50 M steps, 5/15/60 s budgets).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"accmos/internal/experiments"
)

func main() {
	var (
		run         = flag.String("run", "all", "experiment: table2 | table3 | opt | serve | batch | fleet | partition | casestudy | figure1 | all")
		steps       = flag.Int64("steps", 200_000, "Table 2 simulation steps (paper: 50000000)")
		budgetScale = flag.Float64("budget-scale", 0.1, "Table 3 budget scale; 1.0 = the paper's 5/15/60s")
		models      = flag.String("models", "", "comma-separated model subset (default: all ten)")
		seed        = flag.Uint64("seed", 2024, "test-case seed")
		chargeRate  = flag.Int64("charge-rate", 10_000, "case-study charge rate per step")
		increment   = flag.Int64("fig1-increment", 100, "Figure 1 per-step accumulation")
		verbose     = flag.Bool("v", false, "progress logging")
		parallel    = flag.Int("parallel", 1, "run this many benchmark-model rows concurrently (contended timings; 1 = sequential)")
		timeout     = flag.Duration("timeout", 0, "kill a generated-binary run exceeding this wall-clock deadline, e.g. 5m (0 = none)")
		metricsJSON = flag.String("metrics-json", "", "write machine-readable benchmark rows (accmos-metrics/v1) to this file")
		heartbeatMS = flag.Int64("heartbeat-ms", 25, "progress/heartbeat interval for -metrics-json timelines (0 disables)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for live profiling")
		daemon      = flag.String("daemon", "", "drive table2 through a running accmosd at this base URL (e.g. http://localhost:7070) instead of in-process")
	)
	flag.Parse()
	if *pprofAddr != "" {
		go func() {
			fmt.Fprintln(os.Stderr, "experiments: pprof:", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	cfg := experiments.Config{
		Steps:      *steps,
		Seed:       *seed,
		ChargeRate: *chargeRate,
		Verbose:    *verbose,
		Parallel:   *parallel,
		Timeout:    *timeout,
	}
	if *metricsJSON != "" && *heartbeatMS > 0 {
		cfg.Heartbeat = time.Duration(*heartbeatMS) * time.Millisecond
	}
	for _, b := range []float64{5, 15, 60} {
		cfg.Budgets = append(cfg.Budgets, time.Duration(b*(*budgetScale)*float64(time.Second)))
	}
	if *models != "" {
		cfg.Models = strings.Split(*models, ",")
	}

	var metrics *experiments.Metrics
	if *metricsJSON != "" {
		metrics = experiments.NewMetrics(cfg)
	}

	want := func(name string) bool { return *run == "all" || *run == name }
	ran := false
	if want("table2") {
		ran = true
		if *daemon != "" {
			rows, err := experiments.RemoteTable2(context.Background(), cfg, *daemon)
			if err != nil {
				fatal(err)
			}
			experiments.FormatRemoteTable2(os.Stdout, rows)
			fmt.Println()
		} else {
			rows, err := experiments.Table2(cfg)
			if err != nil {
				fatal(err)
			}
			experiments.FormatTable2(os.Stdout, rows)
			fmt.Println()
			if metrics != nil {
				metrics.AddTable2(rows)
			}
		}
	}
	if want("table3") {
		ran = true
		rows, err := experiments.Table3(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.FormatTable3(os.Stdout, rows)
		fmt.Println()
		if metrics != nil {
			metrics.AddTable3(rows)
		}
	}
	if want("opt") {
		ran = true
		rows, err := experiments.BenchOpt(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.FormatOpt(os.Stdout, rows)
		fmt.Println()
		if metrics != nil {
			metrics.AddOpt(rows)
		}
	}
	if want("serve") {
		ran = true
		rows, err := experiments.BenchServe(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.FormatServe(os.Stdout, rows)
		fmt.Println()
		if metrics != nil {
			metrics.AddServe(rows)
		}
	}
	if want("batch") {
		ran = true
		rows, err := experiments.BenchBatch(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.FormatBatch(os.Stdout, rows)
		fmt.Println()
		if metrics != nil {
			metrics.AddBatch(rows)
		}
	}
	if want("fleet") {
		ran = true
		rows, err := experiments.BenchFleet(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.FormatFleet(os.Stdout, rows)
		fmt.Println()
		if metrics != nil {
			metrics.AddFleet(rows)
		}
	}
	if want("partition") {
		ran = true
		rows, err := experiments.BenchPartition(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.FormatPartition(os.Stdout, rows)
		fmt.Println()
		if metrics != nil {
			metrics.AddPartition(rows)
		}
	}
	if want("casestudy") {
		ran = true
		res, err := experiments.CaseStudy(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.FormatCaseStudy(os.Stdout, res)
		fmt.Println()
	}
	if want("figure1") {
		ran = true
		res, err := experiments.Figure1(cfg, *increment)
		if err != nil {
			fatal(err)
		}
		experiments.FormatFigure1(os.Stdout, res)
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *run))
	}
	if metrics != nil {
		if err := metrics.WriteFile(*metricsJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "experiments: %d metric row(s) written to %s\n", len(metrics.Rows), *metricsJSON)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
