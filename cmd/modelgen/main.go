// Command modelgen materialises the benchmark suite as model files: the
// ten Table-1 models, the Figure-1 motivating model, and the CSEV
// error-injection variant of the case study.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"accmos/internal/benchmodels"
	"accmos/internal/slx"
)

func main() {
	var (
		outDir     = flag.String("out", "models", "output directory")
		chargeRate = flag.Int64("charge-rate", 10000, "CSEV injected charge rate per step")
	)
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range benchmodels.Names() {
		m, err := benchmodels.Build(name)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*outDir, name+".xml")
		if err := slx.WriteFile(path, m); err != nil {
			fatal(err)
		}
		st := m.Stats()
		fmt.Printf("%-22s %4d actors %3d subsystems  %s\n", path, st.Actors, st.Subsystems,
			benchmodels.Description(name))
	}
	fig1 := benchmodels.Figure1Model()
	if err := slx.WriteFile(filepath.Join(*outDir, "FIG1.xml"), fig1); err != nil {
		fatal(err)
	}
	fmt.Printf("%-22s %4d actors (Figure 1 motivating model)\n",
		filepath.Join(*outDir, "FIG1.xml"), len(fig1.Actors))
	inj := benchmodels.CSEVInjected(*chargeRate)
	if err := slx.WriteFile(filepath.Join(*outDir, "CSEVINJ.xml"), inj); err != nil {
		fatal(err)
	}
	fmt.Printf("%-22s %4d actors (CSEV with injected errors, overflow at step %d)\n",
		filepath.Join(*outDir, "CSEVINJ.xml"), len(inj.Actors), benchmodels.OverflowStepOf(*chargeRate))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "modelgen:", err)
	os.Exit(1)
}
