// Command accmosd is the AccMoS simulation daemon: a long-lived HTTP
// service that accepts model submissions, schedules them on a bounded
// priority queue, compiles them through a shared bounded build cache,
// and streams live progress — simulation as a service instead of one
// process per run.
//
// Usage:
//
//	accmosd -addr :7070 -workers 4 -queue 64 -cache-entries 128
//
//	curl -s localhost:7070/healthz
//	curl -s -X POST localhost:7070/v1/jobs -d '{"model":"<slx xml>","steps":100000,"coverage":true}'
//	curl -s localhost:7070/v1/jobs/j-000001
//	curl -sN localhost:7070/v1/jobs/j-000001/events
//	curl -s localhost:7070/metrics
//
// SIGTERM (or SIGINT) starts a graceful drain: the listener stops, new
// submissions get 503, admitted jobs finish (bounded by -drain-timeout),
// then the process exits.
//
// Fleet mode turns several daemons into one service. A coordinator
// accepts the same /v1/jobs API and shards jobs across runner nodes:
//
//	accmosd -coordinator -addr :7070 -store /var/lib/accmos/jobs
//	accmosd -addr :7071 -join http://coordinator:7070
//	accmosd -addr :7072 -join http://coordinator:7070
//
// Runners join by heartbeating; the coordinator routes repeat models to
// the node that already compiled them, ships build artifacts to cold
// nodes, retries jobs off dead runners, and recovers queued jobs from
// -store after a restart.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof-addr mux
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	accmos "accmos"
	"accmos/internal/fleet"
	"accmos/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:7070", "listen address")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent job executors")
		queueDepth   = flag.Int("queue", 64, "max queued jobs before submissions get 429")
		cacheEntries = flag.Int("cache-entries", 128, "max programs resident in the build cache (-1 = unbounded)")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "per-job execution cap (0 = none)")
		poolWorkers  = flag.Int("pool-workers", 2, "warm serve-mode processes kept per compiled artifact, shared across jobs (-1 = spawn one process per run)")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		maxBody      = flag.Int64("max-body", 8<<20, "max submission body bytes")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "graceful-drain bound on SIGTERM; afterwards remaining jobs are canceled")
		partitions   = flag.Int("partitions", 0, "default goroutine-partition request for jobs that do not set partitions (0 or 1 = sequential, N >= 2 = N-way pipelined step loop, -1 = auto from GOMAXPROCS)")
		optLevel     = flag.Int("opt", 1, "default optimization level for jobs that do not set optLevel (0 = off, 1 = constant folding + CSE + dead-actor elimination, 2 = O1 + expression fusion, invariant hoisting, storage narrowing)")
		quiet        = flag.Bool("quiet", false, "suppress per-job logging")
		logJSON      = flag.Bool("log-json", false, "emit structured logs as JSON lines instead of key=value text")
		pprofAddr    = flag.String("pprof-addr", "", "optional separate listen address for net/http/pprof (e.g. localhost:6060); empty disables profiling")

		coordinator = flag.Bool("coordinator", false, "run as a fleet coordinator: accept /v1/jobs and shard them across joined runners instead of executing locally")
		storeDir    = flag.String("store", "", "coordinator job-store directory; queued jobs survive a coordinator restart (empty = in-memory only)")
		tenantQuota = flag.Float64("tenant-quota", 0, "coordinator per-tenant submission quota in jobs/sec (0 = unlimited)")
		tenantBurst = flag.Float64("tenant-burst", 0, "coordinator per-tenant burst allowance (0 = one second of -tenant-quota)")
		deadAfter   = flag.Duration("dead-after", 5*time.Second, "coordinator evicts a runner silent for this long and retries its jobs elsewhere")
		spillLoad   = flag.Int("spill-load", 4, "coordinator spills a job off its warm home node once that node has this many in-flight jobs")
		join        = flag.String("join", "", "coordinator URL to join as a runner (e.g. http://coordinator:7070)")
		advertise   = flag.String("advertise", "", "URL peers should reach this runner at (default http://<addr>)")
		heartbeat   = flag.Duration("heartbeat", time.Second, "runner heartbeat interval when joined to a coordinator")
	)
	flag.Parse()

	defaultOpt, err := accmos.OptLevelFromInt(*optLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "accmosd:", err)
		os.Exit(2)
	}
	if *partitions < accmos.PartitionsAuto {
		fmt.Fprintf(os.Stderr, "accmosd: invalid -partitions %d (want 0, 1, N >= 2 or -1 for auto)\n", *partitions)
		os.Exit(2)
	}

	cfg := server.Config{
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		CacheEntries:      *cacheEntries,
		JobTimeout:        *jobTimeout,
		PoolWorkers:       *poolWorkers,
		RetryAfter:        *retryAfter,
		MaxBodyBytes:      *maxBody,
		DefaultOptLevel:   defaultOpt,
		DefaultPartitions: *partitions,
	}
	var logger *slog.Logger
	if !*quiet {
		// Structured logging replaces the old printf lines: every per-job
		// record carries corr=<job id>, joinable with the job's trace,
		// heartbeats and debug bundle.
		var handler slog.Handler
		if *logJSON {
			handler = slog.NewJSONHandler(os.Stderr, nil)
		} else {
			handler = slog.NewTextHandler(os.Stderr, nil)
		}
		logger = slog.New(handler).With("component", "accmosd")
		cfg.Logger = logger
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))
	}
	if *coordinator {
		runCoordinator(coordinatorOpts{
			addr: *addr, storeDir: *storeDir,
			tenantQuota: *tenantQuota, tenantBurst: *tenantBurst,
			deadAfter: *deadAfter, spillLoad: *spillLoad,
			defaultOpt: defaultOpt, partitions: *partitions, jobTimeout: *jobTimeout,
			maxBody: *maxBody, logger: logger,
		})
		return
	}

	srv := server.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	var agentCancel context.CancelFunc = func() {}
	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = "http://" + *addr
		}
		agent := &fleet.Agent{
			Coordinator: *join,
			Advertise:   adv,
			Server:      srv,
			Interval:    *heartbeat,
			Logger:      logger,
		}
		var actx context.Context
		actx, agentCancel = context.WithCancel(context.Background())
		go agent.Run(actx)
	}

	if *pprofAddr != "" {
		// pprof gets its own listener so profiling never shares the
		// public service port; the import above registered its handlers
		// on http.DefaultServeMux.
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "accmosd: listening on %s (%d workers, queue %d)\n", *addr, *workers, *queueDepth)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "accmosd: %v: draining (bound %v)\n", sig, *drainTimeout)
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "accmosd:", err)
		os.Exit(1)
	}

	// Stop heartbeating first so the coordinator routes around this node
	// while it drains.
	agentCancel()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain and Shutdown run together: Drain flips the scheduler to
	// refuse new work and completes admitted jobs, which also unblocks
	// the open /events streams Shutdown waits on.
	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(ctx) }()
	httpSrv.Shutdown(ctx)
	if err := <-drainErr; err != nil {
		fmt.Fprintf(os.Stderr, "accmosd: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "accmosd: drained cleanly")
}

type coordinatorOpts struct {
	addr        string
	storeDir    string
	tenantQuota float64
	tenantBurst float64
	deadAfter   time.Duration
	spillLoad   int
	defaultOpt  accmos.OptLevel
	partitions  int
	jobTimeout  time.Duration
	maxBody     int64
	logger      *slog.Logger
}

// runCoordinator serves the fleet coordinator until SIGTERM/SIGINT.
// There is no drain phase: queued jobs persist in -store and recover on
// the next start, and dispatched jobs finish on their runners.
func runCoordinator(o coordinatorOpts) {
	coord, err := fleet.NewCoordinator(fleet.Config{
		StoreDir:          o.storeDir,
		TenantRate:        o.tenantQuota,
		TenantBurst:       o.tenantBurst,
		DeadAfter:         o.deadAfter,
		SpillLoad:         o.spillLoad,
		DefaultOptLevel:   o.defaultOpt,
		DefaultPartitions: o.partitions,
		JobTimeout:        o.jobTimeout,
		MaxBodyBytes:      o.maxBody,
		Logger:            o.logger.With("component", "coordinator"),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "accmosd:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: o.addr, Handler: coord.Handler()}

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "accmosd: coordinator listening on %s (store %q)\n", o.addr, o.storeDir)
		errCh <- httpSrv.ListenAndServe()
	}()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "accmosd: coordinator: %v: shutting down\n", sig)
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "accmosd:", err)
		os.Exit(1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	coord.Close()
}
