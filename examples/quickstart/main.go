// Quickstart: build a small model in code, simulate it with the AccMoS
// code-generation pipeline, and cross-check the result against the
// reference interpreter.
package main

import (
	"fmt"
	"log"
	"time"

	accmos "accmos"
	"accmos/internal/model"
	"accmos/internal/types"
)

func main() {
	// A thermostat-ish model: measured temperature is filtered, compared
	// against a setpoint, and a heater switch drives an accumulating
	// room-temperature state.
	m := accmos.NewModelBuilder("THERMO").
		Add("Setpoint", "Constant", 0, 1, model.WithParam("Value", "21.5")).
		Add("Outside", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("Room", "UnitDelay", 1, 1, model.WithParam("InitialCondition", "15")).
		Add("Filter", "DiscreteFilter", 1, 1, model.WithParam("A", "0.95"), model.WithParam("B", "0.05")).
		Add("TooCold", "RelationalOperator", 2, 1, model.WithOperator("<")).
		Add("Heater", "Switch", 3, 1, model.WithOperator("~=0")).
		Add("HeatGain", "Constant", 0, 1, model.WithParam("Value", "0.8")).
		Add("NoHeat", "Constant", 0, 1, model.WithParam("Value", "0")).
		Add("Leak", "Sum", 2, 1, model.WithOperator("+-")).
		Add("LeakGain", "Gain", 1, 1, model.WithParam("Gain", "0.01")).
		Add("Next", "Sum", 3, 1, model.WithOperator("+++")).
		Add("Temp", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("Room", "Filter", 0).
		Wire("Filter", "TooCold", 0).
		Wire("Setpoint", "TooCold", 1).
		Wire("TooCold", "Heater", 1).
		Wire("HeatGain", "Heater", 0).
		Wire("NoHeat", "Heater", 2).
		Wire("Outside", "Leak", 0).
		Wire("Room", "Leak", 1).
		Wire("Leak", "LeakGain", 0).
		Wire("Room", "Next", 0).
		Wire("Heater", "Next", 1).
		Wire("LeakGain", "Next", 2).
		Connect("Next", 0, "Room", 0).
		Connect("Next", 0, "Temp", 0).
		MustBuild()

	opts := accmos.Options{
		Steps:     1_000_000,
		Coverage:  true,
		Diagnose:  true,
		TestCases: accmos.RandomTestCases(m, 7, -10, 25), // outside temperature
	}

	// AccMoS: generate + compile + execute native code.
	sim, err := accmos.Simulate(m, opts)
	if err != nil {
		log.Fatal(err)
	}
	rep := sim.CoverageReport()
	fmt.Printf("AccMoS:  %d steps in %v (compile %v)\n",
		sim.Steps, time.Duration(sim.ExecNanos), time.Duration(sim.CompileNanos))
	fmt.Printf("coverage: actor %.0f%%, condition %.0f%%, decision %.0f%%, MC/DC %.0f%%\n",
		rep.Actor, rep.Cond, rep.Dec, rep.MCDC)

	// Reference interpreter on identical stimuli.
	ref, err := accmos.Interpret(m, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SSE:     %d steps in %v\n", ref.Steps, time.Duration(ref.ExecNanos))
	fmt.Printf("speedup: %.1fx\n", float64(ref.ExecNanos)/float64(sim.ExecNanos))
	if sim.OutputHash == ref.OutputHash {
		fmt.Printf("outputs: bit-identical (hash %016x)\n", sim.OutputHash)
	} else {
		fmt.Printf("outputs: MISMATCH (%016x vs %016x)\n", sim.OutputHash, ref.OutputHash)
	}
}
