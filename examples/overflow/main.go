// Overflow detection: the paper's Figure-1 motivating example. The sample
// model accumulates its two inputs and sums the results; the combining Sum
// actor wraps int32 only after millions of steps. Code-generated
// simulation finds the wrap orders of magnitude faster than the
// interpreted engine.
package main

import (
	"fmt"
	"log"
	"time"

	accmos "accmos"
	"accmos/internal/benchmodels"
)

func main() {
	m := benchmodels.Figure1Model()

	const increment = 200 // per-step accumulation of each input
	opts := accmos.Options{
		Steps:      1 << 40, // effectively "run until detection"
		Diagnose:   true,
		StopOnDiag: accmos.WrapOnOverflow,
		TestCases: &accmos.TestCases{Sources: []accmos.TestSource{
			{Value: increment}, // Const sources (Kind zero value)
			{Value: increment},
		}},
	}

	fmt.Println("searching for the long-horizon wrap-on-overflow ...")

	sim, err := accmos.Simulate(m, opts)
	if err != nil {
		log.Fatal(err)
	}
	step := sim.FirstDetectOf(accmos.WrapOnOverflow)
	fmt.Printf("AccMoS: detected at step %d after %v (+ one-time compile %v)\n",
		step, time.Duration(sim.ExecNanos), time.Duration(sim.CompileNanos))

	ref, err := accmos.Interpret(m, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SSE:    detected at step %d after %v\n",
		ref.FirstDetectOf(accmos.WrapOnOverflow), time.Duration(ref.ExecNanos))
	fmt.Printf("detection speedup: %.0fx (paper reports ~500x for this example)\n",
		float64(ref.ExecNanos)/float64(sim.ExecNanos))
}
