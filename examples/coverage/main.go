// Coverage racing: reproduce the Table-3 effect on one benchmark model.
// Both engines get the same wall-clock budget and random test cases; the
// code-generated simulation executes orders of magnitude more steps, so it
// reaches rare branches and decision outcomes the interpreter cannot touch
// in the same time.
package main

import (
	"fmt"
	"log"
	"time"

	accmos "accmos"
	"accmos/internal/benchmodels"
)

func main() {
	m := benchmodels.MustBuild("TWC") // train wheel speed controller
	st := m.Stats()
	fmt.Printf("model TWC: %d actors, %d subsystems\n", st.Actors, st.Subsystems)

	for _, budget := range []time.Duration{200 * time.Millisecond, 600 * time.Millisecond} {
		opts := accmos.Options{
			Budget:    budget,
			Coverage:  true,
			Diagnose:  true,
			TestCases: accmos.RandomTestCases(m, 2024, -100, 100),
		}
		sim, err := accmos.Simulate(m, opts)
		if err != nil {
			log.Fatal(err)
		}
		ref, err := accmos.Interpret(m, opts)
		if err != nil {
			log.Fatal(err)
		}
		a, s := sim.CoverageReport(), ref.CoverageReport()
		fmt.Printf("\nbudget %v:\n", budget)
		fmt.Printf("  steps     AccMoS %12d   SSE %12d\n", sim.Steps, ref.Steps)
		fmt.Printf("  actor     AccMoS %11.1f%%   SSE %11.1f%%\n", a.Actor, s.Actor)
		fmt.Printf("  condition AccMoS %11.1f%%   SSE %11.1f%%\n", a.Cond, s.Cond)
		fmt.Printf("  decision  AccMoS %11.1f%%   SSE %11.1f%%\n", a.Dec, s.Dec)
		fmt.Printf("  MC/DC     AccMoS %11.1f%%   SSE %11.1f%%\n", a.MCDC, s.MCDC)
	}
}
