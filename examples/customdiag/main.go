// Custom signal diagnosis (§3.2.B): users attach their own checks to actor
// outputs — here a physical-range check and a sudden-change detector on a
// thruster power signal — plus the built-in signal monitor (the paper's
// outputCollect instrumentation).
package main

import (
	"fmt"
	"log"
	"time"

	accmos "accmos"
	"accmos/internal/diagnose"
	"accmos/internal/model"
	"accmos/internal/types"
)

func main() {
	m := accmos.NewModelBuilder("THRUST").
		Add("Demand", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("Depth", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "2")).
		Add("Pressure", "Gain", 1, 1, model.WithParam("Gain", "0.101")).
		Add("Power", "Product", 2, 1, model.WithOperator("**")).
		Add("Limit", "Saturation", 1, 1, model.WithParam("Min", "-400"), model.WithParam("Max", "400")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("Depth", "Pressure", 0).
		Wire("Demand", "Power", 0).
		Wire("Pressure", "Power", 1).
		Wire("Power", "Limit", 0).
		Wire("Limit", "Out", 0).
		MustBuild()

	opts := accmos.Options{
		Steps:    200_000,
		Diagnose: true,
		Monitor:  []string{"Limit"},
		Custom: []accmos.CustomCheck{
			{
				Actor: "Power", Name: "rated-power",
				Kind: diagnose.RangeCheck, Lo: -350, Hi: 350,
			},
			{
				Actor: "Power", Name: "surge",
				Kind: diagnose.DeltaCheck, MaxDelta: 150,
			},
		},
		TestCases: &accmos.TestCases{Sources: []accmos.TestSource{
			{Kind: accmos.TestUniform, Lo: -30, Hi: 30, Seed: 11}, // demand
			{Kind: accmos.TestUniform, Lo: 0, Hi: 120, Seed: 13},  // depth
		}},
	}

	sim, err := accmos.Simulate(m, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d steps in %v\n", sim.Steps, time.Duration(sim.ExecNanos))
	fmt.Printf("custom-diagnosis findings: %d\n", sim.DiagTotal)
	for _, line := range sim.DiagSummary() {
		fmt.Println(" ", line)
	}
	fmt.Println("first recorded findings:")
	for i, rec := range sim.Diags {
		if i >= 5 {
			break
		}
		fmt.Printf("  %s\n", rec)
	}
	fmt.Printf("monitored Limit output (%d observations, first samples):\n", sim.MonitorHits["Limit"])
	for i, s := range sim.Monitor["Limit"] {
		if i >= 5 {
			break
		}
		fmt.Printf("  step %d: %s\n", s.Step, s.Value)
	}

	// The interpreter reports the identical findings.
	ref, err := accmos.Interpret(m, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interpreter agreement: findings %d/%d, hash match %v\n",
		ref.DiagTotal, sim.DiagTotal, ref.OutputHash == sim.OutputHash)
}
