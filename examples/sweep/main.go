// Test-suite adequacy sweep: compile the model once, then run it under
// many random test suites (one -seed-xor per suite) and watch the merged
// coverage grow — the workflow the paper motivates ("validate that test
// cases are comprehensive enough to cover different parts of models").
// When adding suites stops growing the merged coverage, the remaining
// uncovered points need hand-written tests.
package main

import (
	"fmt"
	"log"

	accmos "accmos"
	"accmos/internal/benchmodels"
)

func main() {
	m := benchmodels.MustBuild("CSEV")
	opts := accmos.Options{
		Steps:     200_000,
		Diagnose:  true,
		TestCases: accmos.RandomTestCases(m, 1, -100, 100),
		// This example prints a per-suite coverage breakdown, which the
		// default batched execution trades away (a batch reports one
		// OR-merged coverage record) — force the per-run path.
		DisableBatch: true,
	}
	seeds := []uint64{0, 0xA5A5, 0x5A5A, 0xC0FFEE, 0xFACADE, 0xB0BA}

	sw, err := accmos.Sweep(m, opts, seeds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model CSEV, %d random suites x %d steps (one compiled binary)\n\n", len(seeds), opts.Steps)
	fmt.Printf("%-10s %8s %8s %8s %8s\n", "suite", "actor%", "cond%", "dec%", "mc/dc%")
	for i, run := range sw.Runs {
		rep := run.CoverageReport()
		fmt.Printf("xor %06x %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			seeds[i], rep.Actor, rep.Cond, rep.Dec, rep.MCDC)
	}
	merged := sw.MergedCoverage()
	fmt.Printf("%-10s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", "merged", merged.Actor, merged.Cond, merged.Dec, merged.MCDC)

	missed := sw.MergedUncovered()
	fmt.Printf("\npoints no random suite reached: %d\n", len(missed))
	for i, line := range missed {
		if i >= 8 {
			fmt.Printf("  ... and %d more\n", len(missed)-8)
			break
		}
		fmt.Printf("  %s\n", line)
	}
}
