// Continuous-model extension (the paper's §5 future work): a first-order
// thermal lag dx/dt = (u - x)/τ resolved by fixed-step numerical solvers.
// The example simulates the same plant under every solver through the
// AccMoS code-generation pipeline and compares the final state against the
// analytic solution x(t) = u + (x0-u)e^(-t/τ).
package main

import (
	"fmt"
	"log"
	"math"
	"strconv"

	accmos "accmos"
	"accmos/internal/model"
	"accmos/internal/types"
)

func main() {
	const (
		tau   = 2.0  // time constant
		dt    = 0.05 // solver step
		u     = 10.0 // constant input
		steps = 200  // t = 10
	)
	exact := u * (1 - math.Exp(-float64(steps)*dt/tau))
	fmt.Printf("plant: dx/dt = (u - x)/%.1f, u = %.0f, dt = %g, t_end = %g\n", tau, u, dt, float64(steps)*dt)
	fmt.Printf("analytic x(t_end) = %.9f\n\n", exact)

	for _, solver := range []string{"euler", "heun", "adams", "rk4"} {
		m := accmos.NewModelBuilder("RC_"+solver).
			Add("U", "Constant", 0, 1, model.WithOutKind(types.F64), model.WithParam("Value", strconv.FormatFloat(u, 'g', -1, 64))).
			Add("Plant", "FirstOrderLag", 1, 1,
				model.WithOperator(solver),
				model.WithParam("TimeConstant", strconv.FormatFloat(tau, 'g', -1, 64)),
				model.WithParam("Dt", strconv.FormatFloat(dt, 'g', -1, 64))).
			Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
			Chain("U", "Plant", "Out").
			MustBuild()

		res, err := accmos.Simulate(m, accmos.Options{
			Steps:             steps + 1,
			Monitor:           []string{"Plant"},
			MaxMonitorSamples: steps + 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		samples := res.Monitor["Plant"]
		last := samples[len(samples)-1]
		x, err := strconv.ParseFloat(last.Value, 64)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s x = %.9f   |error| = %.3e\n", solver, x, math.Abs(x-exact))
	}
	fmt.Println("\nhigher-order solvers converge on the analytic value, as §5 proposes.")
}
