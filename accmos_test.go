package accmos_test

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	accmos "accmos"
	"accmos/internal/benchmodels"
	"accmos/internal/model"
	"accmos/internal/types"
)

func demoModel() *accmos.Model {
	return accmos.NewModelBuilder("DEMO").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1")).
		Add("Acc", "Sum", 2, 1, model.WithOperator("++")).
		Add("D", "UnitDelay", 1, 1).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("In", "Acc", 0).
		Wire("D", "Acc", 1).
		Wire("Acc", "D", 0).
		Wire("Acc", "Out", 0).
		MustBuild()
}

func TestFacadeSimulateMatchesInterpret(t *testing.T) {
	m := demoModel()
	opts := accmos.Options{
		Steps:     3000,
		Coverage:  true,
		Diagnose:  true,
		TestCases: accmos.RandomTestCases(m, 9, 1e5, 2e6),
	}
	sim, err := accmos.Simulate(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := accmos.Interpret(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sim.OutputHash != ref.OutputHash {
		t.Errorf("hash mismatch: %x vs %x", sim.OutputHash, ref.OutputHash)
	}
	if sim.DiagTotal == 0 || sim.DiagTotal != ref.DiagTotal {
		t.Errorf("diag totals: %d vs %d", sim.DiagTotal, ref.DiagTotal)
	}
	simRep, refRep := sim.CoverageReport(), ref.CoverageReport()
	if simRep != refRep {
		t.Errorf("coverage reports differ: %+v vs %+v", simRep, refRep)
	}
	if simRep.Actor == 0 {
		t.Error("no actor coverage")
	}
}

func TestFacadeFastEngines(t *testing.T) {
	m := demoModel()
	opts := accmos.Options{Steps: 1000, TestCases: accmos.RandomTestCases(m, 4, -10, 10)}
	ref, err := accmos.Interpret(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := accmos.Accelerate(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := accmos.RapidAccelerate(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ac.OutputHash != ref.OutputHash || rc.OutputHash != ref.OutputHash {
		t.Errorf("fast engine hashes diverge: ref %x ac %x rac %x",
			ref.OutputHash, ac.OutputHash, rc.OutputHash)
	}
}

func TestFacadeGenerateSource(t *testing.T) {
	src, err := accmos.GenerateSource(demoModel(), accmos.Options{Coverage: true, Diagnose: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"package main", "func modelExe", "diagnose_DEMO_Acc"} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}

func TestFacadeModelFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "demo.xml")
	m := demoModel()
	if err := accmos.SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := accmos.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := accmos.Options{Steps: 500, TestCases: accmos.RandomTestCases(m, 2, -5, 5)}
	a, err := accmos.Interpret(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := accmos.Interpret(loaded, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.OutputHash != b.OutputHash {
		t.Error("round-tripped model behaves differently")
	}
}

func TestFacadeJSONIRRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "demo.json")
	m := demoModel()
	if err := accmos.SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := accmos.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := accmos.Options{Steps: 300, TestCases: accmos.RandomTestCases(m, 8, -5, 5)}
	a, err := accmos.Interpret(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := accmos.Interpret(loaded, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.OutputHash != b.OutputHash {
		t.Error("JSON IR round trip changed behaviour")
	}
}

func TestFacadeStopOnDiag(t *testing.T) {
	m := benchmodels.Figure1Model()
	opts := accmos.Options{
		Steps:      1 << 30,
		Diagnose:   true,
		StopOnDiag: accmos.WrapOnOverflow,
		TestCases: &accmos.TestCases{Sources: []accmos.TestSource{
			{Value: 1e6}, {Value: 1e6}, // Const sources
		}},
	}
	res, err := accmos.Simulate(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstDetectOf(accmos.WrapOnOverflow) < 0 {
		t.Fatal("overflow not detected")
	}
	if res.Steps > 1200 {
		t.Errorf("ran %d steps; expected early stop", res.Steps)
	}
}

func TestFacadeDefaults(t *testing.T) {
	// No test cases, no steps: defaults kick in.
	res, err := accmos.Interpret(demoModel(), accmos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1000 {
		t.Errorf("default steps = %d, want 1000", res.Steps)
	}
}

// sweepModel has a rare branch (input > 99): individual random suites
// may miss it, so sweeps exercise real coverage merging.
func sweepModel() *accmos.Model {
	return accmos.NewModelBuilder("SWEEP").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("Rare", "CompareToConstant", 1, 1, model.WithOperator(">"), model.WithParam("Constant", "99")).
		Add("Sw", "Switch", 3, 1, model.WithOperator("~=0")).
		Add("Hi", "Constant", 0, 1, model.WithOutKind(types.F64), model.WithParam("Value", "1")).
		Add("Lo", "Constant", 0, 1, model.WithOutKind(types.F64), model.WithParam("Value", "2")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("In", "Rare", 0).
		Wire("Hi", "Sw", 0).
		Wire("Rare", "Sw", 1).
		Wire("Lo", "Sw", 2).
		Wire("Sw", "Out", 0).
		MustBuild()
}

func TestSweepMergesCoverage(t *testing.T) {
	m := sweepModel()
	opts := accmos.Options{
		Steps:     400,
		TestCases: accmos.RandomTestCases(m, 77, -100, 100),
	}
	sw, err := accmos.Sweep(m, opts, []uint64{0, 0xDEAD, 0xBEEF, 0xF00D})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Runs) != 4 {
		t.Fatalf("runs = %d", len(sw.Runs))
	}
	merged := sw.MergedCoverage()
	hashes := map[uint64]bool{}
	for _, run := range sw.Runs {
		rep := run.CoverageReport()
		if rep.CondCovered > merged.CondCovered || rep.DecCovered > merged.DecCovered {
			t.Errorf("individual run exceeds merged coverage: %+v vs %+v", rep, merged)
		}
		hashes[run.OutputHash] = true
	}
	if len(hashes) != 4 {
		t.Errorf("seed xors must produce distinct suites: %d distinct hashes", len(hashes))
	}
	// Seed xor 0 must reproduce the unperturbed suite exactly.
	base, err := accmos.Interpret(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Runs[0].OutputHash != base.OutputHash {
		t.Error("seed-xor 0 diverged from the embedded suite")
	}
}

func TestSweepParallelMatchesSequential(t *testing.T) {
	// Acceptance: a parallel sweep must be a pure scheduling change — the
	// per-run results (order included) and the merged coverage bitmaps
	// must be identical to the sequential executor's.
	m := sweepModel()
	seeds := []uint64{0, 1, 0xDEAD, 0xBEEF, 0xF00D, 42, 0xFEED, 7}
	run := func(parallelism int) *accmos.SweepResult {
		t.Helper()
		sw, err := accmos.Sweep(m, accmos.Options{
			Steps:       400,
			TestCases:   accmos.RandomTestCases(m, 77, -100, 100),
			Parallelism: parallelism,
		}, seeds)
		if err != nil {
			t.Fatal(err)
		}
		return sw
	}
	seq := run(1)
	par := run(4)
	if len(seq.Runs) != len(seeds) || len(par.Runs) != len(seeds) {
		t.Fatalf("runs: sequential %d, parallel %d, want %d", len(seq.Runs), len(par.Runs), len(seeds))
	}
	for i := range seeds {
		if seq.Runs[i].OutputHash != par.Runs[i].OutputHash {
			t.Errorf("run %d: output hash %x (sequential) vs %x (parallel)",
				i, seq.Runs[i].OutputHash, par.Runs[i].OutputHash)
		}
		if !reflect.DeepEqual(seq.Runs[i].Results.Coverage, par.Runs[i].Results.Coverage) {
			t.Errorf("run %d: coverage bitmaps diverge between executors", i)
		}
	}
	if seq.MergedCoverage() != par.MergedCoverage() {
		t.Errorf("merged coverage diverges: %+v (sequential) vs %+v (parallel)",
			seq.MergedCoverage(), par.MergedCoverage())
	}
}

func TestSweepContextCancel(t *testing.T) {
	// Effectively-endless suites: only cancellation can end this sweep.
	m := sweepModel()
	opts := accmos.Options{
		Steps:       1 << 40,
		TestCases:   accmos.RandomTestCases(m, 77, -100, 100),
		Parallelism: 2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(500 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := accmos.SweepContext(ctx, m, opts, []uint64{1, 2, 3, 4})
	if err == nil {
		t.Fatal("a cancelled sweep must return an error")
	}
	if !strings.Contains(err.Error(), "context canceled") {
		t.Errorf("error must name the cancellation: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("sweep took %v to honour a 500ms cancel", elapsed)
	}
}

func TestSweepTagsSnapshotsWithWorkerAndSuite(t *testing.T) {
	m := sweepModel()
	var (
		mu    sync.Mutex
		snaps []accmos.Snapshot
	)
	opts := accmos.Options{
		Steps:         5000,
		TestCases:     accmos.RandomTestCases(m, 77, -100, 100),
		Parallelism:   2,
		DisableBatch:  true, // per-suite snapshot tagging is a per-run-path contract
		ProgressEvery: time.Millisecond,
		Progress: func(s accmos.Snapshot) {
			mu.Lock()
			snaps = append(snaps, s)
			mu.Unlock()
		},
	}
	if _, err := accmos.Sweep(m, opts, []uint64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("heartbeat-enabled sweep emitted no progress snapshots")
	}
	suites := map[int]bool{}
	for _, s := range snaps {
		if s.Worker < 1 || s.Worker > 2 {
			t.Fatalf("snapshot worker %d out of range [1,2]", s.Worker)
		}
		if s.Suite < 1 || s.Suite > 4 {
			t.Fatalf("snapshot suite %d out of range [1,4]", s.Suite)
		}
		if s.Final {
			suites[s.Suite] = true
		}
	}
	if len(suites) != 4 {
		t.Errorf("final snapshots cover %d of 4 suites: %v", len(suites), suites)
	}
}

func BenchmarkSweep(b *testing.B) {
	m := sweepModel()
	seeds := make([]uint64, 8)
	for i := range seeds {
		seeds[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", p), func(b *testing.B) {
			opts := accmos.Options{
				Steps:       2_000_000,
				TestCases:   accmos.RandomTestCases(m, 77, -100, 100),
				Parallelism: p,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := accmos.Sweep(m, opts, seeds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepPooled is the worker-pool counterpart: the same sweep at
// a short horizon (where per-run process startup is the dominant cost),
// spawn-per-run vs warm serve-mode workers. The workers=0 sub-benchmarks
// are the baseline to beat.
func BenchmarkSweepPooled(b *testing.B) {
	m := sweepModel()
	seeds := make([]uint64, 16)
	for i := range seeds {
		seeds[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"spawn", 0},
		{"pooled", 1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opts := accmos.Options{
				Steps:       5_000,
				TestCases:   accmos.RandomTestCases(m, 77, -100, 100),
				Parallelism: 1,
				Workers:     bc.workers,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := accmos.Sweep(m, opts, seeds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
