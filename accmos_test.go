package accmos_test

import (
	"path/filepath"
	"strings"
	"testing"

	accmos "accmos"
	"accmos/internal/benchmodels"
	"accmos/internal/model"
	"accmos/internal/types"
)

func demoModel() *accmos.Model {
	return accmos.NewModelBuilder("DEMO").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1")).
		Add("Acc", "Sum", 2, 1, model.WithOperator("++")).
		Add("D", "UnitDelay", 1, 1).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("In", "Acc", 0).
		Wire("D", "Acc", 1).
		Wire("Acc", "D", 0).
		Wire("Acc", "Out", 0).
		MustBuild()
}

func TestFacadeSimulateMatchesInterpret(t *testing.T) {
	m := demoModel()
	opts := accmos.Options{
		Steps:     3000,
		Coverage:  true,
		Diagnose:  true,
		TestCases: accmos.RandomTestCases(m, 9, 1e5, 2e6),
	}
	sim, err := accmos.Simulate(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := accmos.Interpret(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sim.OutputHash != ref.OutputHash {
		t.Errorf("hash mismatch: %x vs %x", sim.OutputHash, ref.OutputHash)
	}
	if sim.DiagTotal == 0 || sim.DiagTotal != ref.DiagTotal {
		t.Errorf("diag totals: %d vs %d", sim.DiagTotal, ref.DiagTotal)
	}
	simRep, refRep := sim.CoverageReport(), ref.CoverageReport()
	if simRep != refRep {
		t.Errorf("coverage reports differ: %+v vs %+v", simRep, refRep)
	}
	if simRep.Actor == 0 {
		t.Error("no actor coverage")
	}
}

func TestFacadeFastEngines(t *testing.T) {
	m := demoModel()
	opts := accmos.Options{Steps: 1000, TestCases: accmos.RandomTestCases(m, 4, -10, 10)}
	ref, err := accmos.Interpret(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := accmos.Accelerate(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := accmos.RapidAccelerate(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ac.OutputHash != ref.OutputHash || rc.OutputHash != ref.OutputHash {
		t.Errorf("fast engine hashes diverge: ref %x ac %x rac %x",
			ref.OutputHash, ac.OutputHash, rc.OutputHash)
	}
}

func TestFacadeGenerateSource(t *testing.T) {
	src, err := accmos.GenerateSource(demoModel(), accmos.Options{Coverage: true, Diagnose: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"package main", "func modelExe", "diagnose_DEMO_Acc"} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}

func TestFacadeModelFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "demo.xml")
	m := demoModel()
	if err := accmos.SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := accmos.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := accmos.Options{Steps: 500, TestCases: accmos.RandomTestCases(m, 2, -5, 5)}
	a, err := accmos.Interpret(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := accmos.Interpret(loaded, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.OutputHash != b.OutputHash {
		t.Error("round-tripped model behaves differently")
	}
}

func TestFacadeJSONIRRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "demo.json")
	m := demoModel()
	if err := accmos.SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := accmos.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := accmos.Options{Steps: 300, TestCases: accmos.RandomTestCases(m, 8, -5, 5)}
	a, err := accmos.Interpret(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := accmos.Interpret(loaded, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.OutputHash != b.OutputHash {
		t.Error("JSON IR round trip changed behaviour")
	}
}

func TestFacadeStopOnDiag(t *testing.T) {
	m := benchmodels.Figure1Model()
	opts := accmos.Options{
		Steps:      1 << 30,
		Diagnose:   true,
		StopOnDiag: accmos.WrapOnOverflow,
		TestCases: &accmos.TestCases{Sources: []accmos.TestSource{
			{Value: 1e6}, {Value: 1e6}, // Const sources
		}},
	}
	res, err := accmos.Simulate(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstDetectOf(accmos.WrapOnOverflow) < 0 {
		t.Fatal("overflow not detected")
	}
	if res.Steps > 1200 {
		t.Errorf("ran %d steps; expected early stop", res.Steps)
	}
}

func TestFacadeDefaults(t *testing.T) {
	// No test cases, no steps: defaults kick in.
	res, err := accmos.Interpret(demoModel(), accmos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1000 {
		t.Errorf("default steps = %d, want 1000", res.Steps)
	}
}

func TestSweepMergesCoverage(t *testing.T) {
	// A model with a rare branch: individual random suites may miss it,
	// and merged coverage must dominate every individual run.
	m := accmos.NewModelBuilder("SWEEP").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("Rare", "CompareToConstant", 1, 1, model.WithOperator(">"), model.WithParam("Constant", "99")).
		Add("Sw", "Switch", 3, 1, model.WithOperator("~=0")).
		Add("Hi", "Constant", 0, 1, model.WithOutKind(types.F64), model.WithParam("Value", "1")).
		Add("Lo", "Constant", 0, 1, model.WithOutKind(types.F64), model.WithParam("Value", "2")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("In", "Rare", 0).
		Wire("Hi", "Sw", 0).
		Wire("Rare", "Sw", 1).
		Wire("Lo", "Sw", 2).
		Wire("Sw", "Out", 0).
		MustBuild()
	opts := accmos.Options{
		Steps:     400,
		TestCases: accmos.RandomTestCases(m, 77, -100, 100),
	}
	sw, err := accmos.Sweep(m, opts, []uint64{0, 0xDEAD, 0xBEEF, 0xF00D})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Runs) != 4 {
		t.Fatalf("runs = %d", len(sw.Runs))
	}
	merged := sw.MergedCoverage()
	hashes := map[uint64]bool{}
	for _, run := range sw.Runs {
		rep := run.CoverageReport()
		if rep.CondCovered > merged.CondCovered || rep.DecCovered > merged.DecCovered {
			t.Errorf("individual run exceeds merged coverage: %+v vs %+v", rep, merged)
		}
		hashes[run.OutputHash] = true
	}
	if len(hashes) != 4 {
		t.Errorf("seed xors must produce distinct suites: %d distinct hashes", len(hashes))
	}
	// Seed xor 0 must reproduce the unperturbed suite exactly.
	base, err := accmos.Interpret(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Runs[0].OutputHash != base.OutputHash {
		t.Error("seed-xor 0 diverged from the embedded suite")
	}
}
