module accmos

go 1.22
