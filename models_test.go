package accmos_test

import (
	"os"
	"path/filepath"
	"testing"

	accmos "accmos"
	"accmos/internal/benchmodels"
)

// TestShippedModelsMatchGenerator guards the checked-in models/ directory:
// every shipped file must parse, compile, and be byte-for-byte behaviour-
// equivalent to what the deterministic generator produces today. A failure
// means someone changed the synthesizer without regenerating the files
// (run: go run ./cmd/modelgen -out models).
func TestShippedModelsMatchGenerator(t *testing.T) {
	if _, err := os.Stat("models"); err != nil {
		t.Skip("models/ not present")
	}
	for _, name := range benchmodels.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			shipped, err := accmos.LoadModel(filepath.Join("models", name+".xml"))
			if err != nil {
				t.Fatal(err)
			}
			generated := benchmodels.MustBuild(name)
			if len(shipped.Actors) != len(generated.Actors) ||
				len(shipped.Connections) != len(generated.Connections) {
				t.Fatalf("shipped %s out of date: %d/%d actors, %d/%d connections — regenerate models/",
					name, len(shipped.Actors), len(generated.Actors),
					len(shipped.Connections), len(generated.Connections))
			}
			for i := range generated.Actors {
				a, b := generated.Actors[i], shipped.Actors[i]
				if a.Name != b.Name || a.Type != b.Type || a.Operator != b.Operator || a.Subsystem != b.Subsystem {
					t.Fatalf("shipped %s actor %d differs (%s vs %s) — regenerate models/", name, i, a.Name, b.Name)
				}
			}
			for i := range generated.Connections {
				if generated.Connections[i] != shipped.Connections[i] {
					t.Fatalf("shipped %s connection %d differs — regenerate models/", name, i)
				}
			}
			// Behavioural spot check through the facade.
			opts := accmos.Options{Steps: 300, TestCases: accmos.RandomTestCases(shipped, 3, -50, 50)}
			a, err := accmos.Interpret(shipped, opts)
			if err != nil {
				t.Fatal(err)
			}
			b, err := accmos.Interpret(generated, opts)
			if err != nil {
				t.Fatal(err)
			}
			if a.OutputHash != b.OutputHash {
				t.Fatal("shipped model behaves differently from the generator's output")
			}
		})
	}
	// The special models ship too.
	for _, f := range []string{"FIG1.xml", "CSEVINJ.xml"} {
		if _, err := accmos.LoadModel(filepath.Join("models", f)); err != nil {
			t.Errorf("shipped %s: %v", f, err)
		}
	}
}
