package accmos_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIPipeline exercises the command-line tools the way a user would:
// materialise the benchmark models, run the AccMoS pipeline on one with
// cross-verification, lint it, and run the interpreted baseline tool.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binaries")
	}
	dir := t.TempDir()
	build := func(name, pkg string) string {
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
		return bin
	}
	accmosBin := build("accmos", "./cmd/accmos")
	ssesimBin := build("ssesim", "./cmd/ssesim")
	modelgenBin := build("modelgen", "./cmd/modelgen")

	modelsDir := filepath.Join(dir, "models")
	out, err := exec.Command(modelgenBin, "-out", modelsDir).CombinedOutput()
	if err != nil {
		t.Fatalf("modelgen: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "SPV.xml") {
		t.Fatalf("modelgen output unexpected:\n%s", out)
	}
	entries, err := os.ReadDir(modelsDir)
	if err != nil || len(entries) < 12 {
		t.Fatalf("models dir: %v, %d entries", err, len(entries))
	}
	spv := filepath.Join(modelsDir, "SPV.xml")

	// End-to-end pipeline with interpreter cross-verification.
	out, err = exec.Command(accmosBin, "-model", spv, "-steps", "3000", "-verify", "-uncovered").CombinedOutput()
	if err != nil {
		t.Fatalf("accmos: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"engine:   AccMoS", "coverage:", "interpreter agrees", "uncovered points:"} {
		if !strings.Contains(s, want) {
			t.Errorf("accmos output missing %q:\n%s", want, s)
		}
	}

	// Static checks: the generated suite must be free of dead logic.
	out, err = exec.Command(accmosBin, "-model", spv, "-lint").CombinedOutput()
	s = string(out)
	if strings.Contains(s, "dead logic") {
		t.Errorf("benchmark model has dead logic:\n%s", s)
	}
	_ = err // non-zero exit is fine when findings exist

	// Interpreted baseline tool.
	out, err = exec.Command(ssesimBin, "-model", spv, "-steps", "1000").CombinedOutput()
	if err != nil {
		t.Fatalf("ssesim: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "steps: 1000") {
		t.Errorf("ssesim output unexpected:\n%s", out)
	}

	// JSON output mode decodes as JSON.
	out, err = exec.Command(accmosBin, "-model", spv, "-steps", "500", "-json").CombinedOutput()
	if err != nil {
		t.Fatalf("accmos -json: %v\n%s", err, out)
	}
	if !strings.HasPrefix(strings.TrimSpace(string(out)), "{") {
		t.Errorf("-json did not emit JSON:\n%s", out)
	}
}
