package accmos_test

import (
	"fmt"
	"log"

	accmos "accmos"
	"accmos/internal/model"
	"accmos/internal/types"
)

// Example builds a saturating integrator in code and simulates it through
// the AccMoS pipeline, printing deterministic results.
func Example() {
	m := accmos.NewModelBuilder("EX").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("Acc", "DiscreteIntegrator", 1, 1, model.WithParam("Gain", "0.5")).
		Add("Sat", "Saturation", 1, 1, model.WithParam("Min", "-10"), model.WithParam("Max", "10")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Chain("In", "Acc", "Sat", "Out").
		MustBuild()

	opts := accmos.Options{
		Steps:    1000,
		Coverage: true,
		TestCases: &accmos.TestCases{Sources: []accmos.TestSource{
			{Kind: accmos.TestConst, Value: 1},
		}},
	}
	sim, err := accmos.Simulate(m, opts)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := accmos.Interpret(m, opts)
	if err != nil {
		log.Fatal(err)
	}
	rep := sim.CoverageReport()
	fmt.Printf("steps: %d\n", sim.Steps)
	fmt.Printf("outputs match interpreter: %v\n", sim.OutputHash == ref.OutputHash)
	fmt.Printf("actor coverage: %.0f%%\n", rep.Actor)
	// With a constant positive input the saturation's low branch never
	// executes; the uncovered listing names it.
	for _, line := range sim.Uncovered() {
		fmt.Println("uncovered:", line)
	}
	// Output:
	// steps: 1000
	// outputs match interpreter: true
	// actor coverage: 100%
	// uncovered: cond     EX_Sat branch 0 never taken
}

// ExampleInterpret shows the error-detection workflow: run until the first
// wrap-on-overflow fires and report where and when.
func ExampleInterpret() {
	m := accmos.NewModelBuilder("OVF").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1")).
		Add("Acc", "Sum", 2, 1, model.WithOperator("++")).
		Add("D", "UnitDelay", 1, 1).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("In", "Acc", 0).
		Wire("D", "Acc", 1).
		Wire("Acc", "D", 0).
		Wire("Acc", "Out", 0).
		MustBuild()

	res, err := accmos.Interpret(m, accmos.Options{
		Steps:      1 << 30,
		Diagnose:   true,
		StopOnDiag: accmos.WrapOnOverflow,
		TestCases: &accmos.TestCases{Sources: []accmos.TestSource{
			{Kind: accmos.TestConst, Value: 1 << 20},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overflow first detected at step %d\n", res.FirstDetectOf(accmos.WrapOnOverflow))
	// Output:
	// overflow first detected at step 2047
}
