// Package accmos is the public entry point of the AccMoS reproduction: it
// accelerates the simulation of discrete dataflow (Simulink-style) models
// by translating them into instrumented native code — with runtime actor
// information collection, coverage collection (actor, condition, decision,
// MC/DC) and calculation diagnosis — compiling and executing it, and
// returning the simulation results (paper: "AccMoS: Accelerating Model
// Simulation for Simulink via Code Generation", DAC 2024).
//
// The typical flow:
//
//	m, _ := accmos.LoadModel("model.xml")          // or build one with NewModelBuilder
//	res, _ := accmos.Simulate(m, accmos.Options{   // code-generated simulation
//	    Steps:    50_000_000,
//	    Coverage: true,
//	    Diagnose: true,
//	    TestCases: accmos.RandomTestCases(m, 42, -100, 100),
//	})
//	fmt.Println(res.CoverageReport(), res.DiagSummary())
//
// Interpret runs the same model on the reference step-by-step interpreter
// (the SSE baseline); both produce bit-identical output hashes, coverage
// bitmaps and diagnostic findings.
package accmos

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"accmos/internal/actors"
	"accmos/internal/codegen"
	"accmos/internal/coverage"
	"accmos/internal/diagnose"
	"accmos/internal/harness"
	"accmos/internal/interp"
	"accmos/internal/irjson"
	"accmos/internal/lint"
	"accmos/internal/model"
	"accmos/internal/obs"
	"accmos/internal/opt"
	"accmos/internal/opt/partition"
	"accmos/internal/rapid"
	"accmos/internal/simresult"
	"accmos/internal/slx"
	"accmos/internal/testcase"
)

// Re-exported building blocks, so library users need only this package.
type (
	// Model is a dataflow model (actors + relationships).
	Model = model.Model
	// ModelBuilder constructs models programmatically.
	ModelBuilder = model.Builder
	// TestCases describes the stimulus for every input port.
	TestCases = testcase.Set
	// TestSource is one port's stimulus generator.
	TestSource = testcase.Source
	// CustomCheck is a user-defined signal diagnosis.
	CustomCheck = diagnose.CustomCheck
	// DiagKind names a diagnosable error class.
	DiagKind = diagnose.Kind
	// CoverageReport holds the four coverage percentages.
	CoverageReport = coverage.Report
	// Tracer records pipeline phase spans (see Options.Trace).
	Tracer = obs.Tracer
	// Snapshot is one live progress observation (see Options.Progress).
	Snapshot = obs.Snapshot
)

// NewTracer starts a pipeline phase tracer for Options.Trace.
func NewTracer() *Tracer { return obs.NewTracer() }

// BuildCache memoises compiled generated programs by content hash; see
// Options.Cache. CacheStats snapshots its hit/miss/eviction counters.
type (
	BuildCache = harness.BuildCache
	CacheStats = harness.CacheStats
)

// NewBuildCache creates a private build cache rooted at dir ("" = a
// process-lifetime temp directory). A long-lived service should bound it
// with SetLimit.
func NewBuildCache(dir string) *BuildCache { return harness.NewBuildCache(dir) }

// WorkerPool keeps warm serve-mode processes per compiled artifact; see
// Options.Pool. WorkerStats snapshots its spawn/reuse/respawn counters.
type (
	WorkerPool  = harness.WorkerPool
	WorkerStats = harness.WorkerStats
)

// NewWorkerPool creates a worker pool keeping up to perArtifact warm
// serve-mode processes per compiled binary (minimum 1). Close it when
// done — warm workers are live child processes.
func NewWorkerPool(perArtifact int) *WorkerPool { return harness.NewWorkerPool(perArtifact) }

// RunError is the structured form of a generated-binary execution
// failure: what died (model, suite, binary, correlation ID), why (a
// Reason* constant, exit code, deadline) and bounded evidence (stderr
// tail, last heartbeats). Extract it with errors.As; Error() renders the
// familiar harness message.
type RunError = harness.RunError

// Machine-readable failure reasons recorded on a RunError.
const (
	ReasonTimeout  = harness.ReasonTimeout
	ReasonCanceled = harness.ReasonCanceled
	ReasonExit     = harness.ReasonExit
	ReasonProtocol = harness.ReasonProtocol
	ReasonWorker   = harness.ReasonWorker
	ReasonDecode   = harness.ReasonDecode
)

// NewRunID returns a fresh correlation ID ("r-" + 12 hex digits) for
// Options.RunID when the caller has no natural job ID of its own.
func NewRunID() string { return obs.NewRunID() }

// DefaultBuildCache returns the process-wide cache used when neither
// Options.Cache nor Options.WorkDir is set.
func DefaultBuildCache() *BuildCache { return harness.DefaultCache }

// Diagnosis kinds (see internal/diagnose for the full catalogue).
const (
	WrapOnOverflow   = diagnose.WrapOnOverflow
	Downcast         = diagnose.Downcast
	DivisionByZero   = diagnose.DivisionByZero
	PrecisionLoss    = diagnose.PrecisionLoss
	IndexOutOfBounds = diagnose.IndexOutOfBounds
	DomainError      = diagnose.DomainError
)

// Test-case source kinds.
const (
	TestConst   = testcase.Const
	TestUniform = testcase.Uniform
	TestRamp    = testcase.Ramp
	TestSine    = testcase.Sine
	TestPulse   = testcase.Pulse
	TestTable   = testcase.Table
)

// NewModelBuilder starts building a model in code.
func NewModelBuilder(name string) *ModelBuilder { return model.NewBuilder(name) }

// LoadModel reads a model file: the two-part XML format by default, or
// the tool-agnostic JSON IR (§5 extensibility) for .json paths.
func LoadModel(path string) (*Model, error) {
	if strings.HasSuffix(path, ".json") {
		return irjson.ReadModelFile(path)
	}
	return slx.ReadFile(path)
}

// LoadModelBytes parses a model from an in-memory document — the
// submission path of a network service, where no file exists. The format
// is auto-detected: a document whose first non-space byte is '{' is JSON
// IR, anything else is the two-part SLX XML.
func LoadModelBytes(data []byte) (*Model, error) {
	if isJSONDoc(data) {
		doc, err := irjson.Decode(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return doc.ToModel()
	}
	return slx.Decode(bytes.NewReader(data))
}

func isJSONDoc(data []byte) bool {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	return len(trimmed) > 0 && trimmed[0] == '{'
}

// SaveModel writes a model file, selecting the format by extension like
// LoadModel.
func SaveModel(path string, m *Model) error {
	if strings.HasSuffix(path, ".json") {
		return irjson.WriteModelFile(path, m)
	}
	return slx.WriteFile(path, m)
}

// RandomTestCases builds uniform random stimuli over [lo, hi] for every
// input port of m, seeded deterministically.
func RandomTestCases(m *Model, seed uint64, lo, hi float64) *TestCases {
	n := 0
	for _, a := range m.Actors {
		if a.Type == "Inport" {
			n++
		}
	}
	return testcase.NewRandomSet(n, seed, lo, hi)
}

// OptLevel selects the optimizing middle-end level (see internal/opt):
// the pass pipeline over the compiled model that runs before any engine.
type OptLevel int

const (
	// OptDefault applies the default level, currently O1.
	OptDefault OptLevel = iota
	// OptO0 disables every optimization pass.
	OptO0
	// OptO1 enables constant folding, common-subexpression elimination
	// and dead-actor elimination.
	OptO1
	// OptO2 additionally lowers the O1 graph to a typed expression IR:
	// single-consumer arithmetic/logic/compare chains fuse into one
	// generated Go expression, loop-invariant subtrees hoist out of the
	// step loop, and signal storage narrows by inferred width. Only the
	// generated engine changes; the in-process engines run the O1 model.
	OptO2
)

// String renders the level the way the -O flag spells it.
func (l OptLevel) String() string { return l.level().String() }

func (l OptLevel) level() opt.Level {
	switch l {
	case OptO0:
		return opt.O0
	case OptO2:
		return opt.O2
	}
	return opt.O1
}

// OptLevelFromInt maps a CLI -O value (0, 1 or 2) to an OptLevel.
func OptLevelFromInt(n int) (OptLevel, error) {
	switch n {
	case 0:
		return OptO0, nil
	case 1:
		return OptO1, nil
	case 2:
		return OptO2, nil
	}
	return OptDefault, fmt.Errorf("accmos: unsupported opt level -O%d (supported: 0, 1, 2)", n)
}

// PartitionsAuto asks the partitioner to pick the partition count from
// GOMAXPROCS, bounded by a min-actors-per-partition threshold.
const PartitionsAuto = -1

// PartStats reports the partitioning decision behind one generated run.
type PartStats struct {
	// Requested is the partition count the options asked for (after
	// auto resolution).
	Requested int `json:"requested"`
	// Usable is what the cut produced; 1 means the run was sequential.
	Usable int `json:"usable"`
	// CutEdges counts signals shipped between partitions each step.
	CutEdges int `json:"cutEdges,omitempty"`
	// Balance is maxPartitionWeight/idealWeight (1.0 = perfect).
	Balance float64 `json:"balance,omitempty"`
	// Declined records why a K-way request fell back to sequential.
	Declined string `json:"declined,omitempty"`
}

// partitionPlan resolves Options.Partitions against the optimized
// schedule. Nil when partitioning is off; a declined plan when the
// request cannot be honoured (StopOnDiag needs the sequential
// stop-flag protocol, and some graphs have no legal balanced cut).
func partitionPlan(opts *Options, c *actors.Compiled) *partition.Plan {
	k := opts.Partitions
	if k == PartitionsAuto {
		k = partition.AutoK(c)
	}
	if k < 2 && opts.Partitions != PartitionsAuto {
		return nil
	}
	if opts.StopOnDiag != "" {
		return &partition.Plan{Requested: k, Usable: 1, Declined: "stop-on-diag runs are sequential"}
	}
	return partition.Build(c, k)
}

// partStats renders a partition plan for the public Result.
func partStats(pp *partition.Plan) *PartStats {
	if pp == nil {
		return nil
	}
	return &PartStats{
		Requested: pp.Requested,
		Usable:    pp.Usable,
		CutEdges:  pp.CutEdges,
		Balance:   pp.Balance,
		Declined:  pp.Declined,
	}
}

// OptPassStat records how many sites one optimizer pass rewrote.
type OptPassStat = opt.PassStat

// OptStats summarises what the optimizing middle-end did for one run.
type OptStats struct {
	Level        string        `json:"level"`
	ActorsBefore int           `json:"actorsBefore"`
	ActorsAfter  int           `json:"actorsAfter"`
	Passes       []OptPassStat `json:"passes,omitempty"`
	// O2 middle-end counters (zero below O2).
	FusedExprs      int `json:"fusedExprs,omitempty"`
	HoistedExprs    int `json:"hoistedExprs,omitempty"`
	NarrowedSignals int `json:"narrowedSignals,omitempty"`
	// EffectiveActors is the post-fusion step-loop statement count —
	// the denominator ns-per-actor-step reporting uses. Equals
	// ActorsAfter below O2.
	EffectiveActors int `json:"effectiveActors"`
}

// Options configures a simulation through the facade.
type Options struct {
	// Steps bounds the simulation length (default 1000). With Budget
	// also set, the run stops at whichever bound is reached first; zero
	// with Budget set means budget-only.
	Steps int64
	// Budget bounds wall-clock execution instead of (or alongside) the
	// step count.
	Budget time.Duration

	// Coverage enables actor/condition/decision/MC-DC collection.
	Coverage bool
	// Diagnose enables calculation diagnosis.
	Diagnose bool
	// Monitor lists actor names whose outputs are recorded each step.
	Monitor []string
	// Custom adds user-defined signal diagnoses.
	Custom []CustomCheck
	// MaxMonitorSamples bounds recorded samples per monitored actor
	// (default 16).
	MaxMonitorSamples int
	// StopOnDiag stops the run when this diagnosis kind first fires;
	// StopOnActor optionally narrows it to one actor path.
	StopOnDiag  DiagKind
	StopOnActor string

	// TestCases supplies input stimuli; defaults to uniform random [-1,1].
	TestCases *TestCases

	// OptLevel selects the optimizing middle-end level (default: O1).
	// All engines run the same optimized model; instrumentation-sound
	// passes keep output hashes, coverage bitmaps and diagnosis counts
	// byte-identical to an O0 run.
	OptLevel OptLevel

	// Partitions requests intra-model parallelism from the generated
	// engine: the scheduled actor graph is cut into this many balanced
	// contiguous sub-graphs and the step loop pipelines across one
	// goroutine per partition (0 or 1 = sequential, the default;
	// PartitionsAuto picks from GOMAXPROCS). Results are bit-identical
	// to a sequential build; the request is declined — recorded on
	// Result.Part — when the graph has no usable cut or the run uses
	// StopOnDiag. Only the generated engine parallelizes; the in-process
	// engines ignore this.
	Partitions int

	// WorkDir keeps generated sources and binaries (default: the
	// process-wide build cache, so repeated calls on the same model and
	// options reuse the compiled binary instead of re-invoking go build).
	WorkDir string

	// Cache overrides the process-wide build cache for this call — a
	// long-lived service gives each daemon instance its own bounded
	// cache instead of sharing the global one. Ignored when WorkDir pins
	// the artifacts.
	Cache *BuildCache

	// Timeout kills a generated-binary execution (its whole process
	// group) that exceeds this wall-clock deadline, turning a wedged or
	// runaway program into an error instead of a hang. Zero = no
	// deadline. Applies per run: each suite of a Sweep gets its own span.
	Timeout time.Duration

	// Parallelism bounds how many suites Sweep executes concurrently
	// (default GOMAXPROCS; 1 forces the sequential path). Merged
	// coverage and the Runs order are identical at any parallelism.
	Parallelism int

	// Workers, when > 0, makes Sweep execute its suites through a warm
	// worker pool of up to this many serve-mode processes per compiled
	// artifact, amortizing process startup across runs. The pool lives
	// for the one call. Results are bit-identical to spawn-per-run mode.
	Workers int

	// Pool routes execution through an externally owned worker pool —
	// how a long-lived service (accmosd) keeps workers warm across jobs
	// that share an artifact. The caller closes it. When set, Simulate
	// and Sweep both use it, and Workers is ignored.
	Pool *WorkerPool

	// DisableBatch turns off batched lane execution for Sweep. By
	// default a step-bounded sweep (no Budget)
	// routes groups of seeds through the generated batch entry point —
	// one step loop over all lanes — instead of one request per seed.
	// Output hashes, diagnostics and the sweep's merged coverage are
	// bit-identical either way, but a batch reports coverage once,
	// OR-merged over its lanes, so batched runs carry no per-suite
	// coverage detail (Result.CoverageReport returns the zero report).
	// Set this to force the per-run (pooled or spawn) path — for
	// per-suite coverage breakdowns, or to compare the two modes.
	DisableBatch bool

	// RunID is the run's correlation ID — the job ID under accmosd, a
	// NewRunID() value for CLI runs. When set, every progress snapshot,
	// trace span set, and structured run error carries it, so logs and
	// event streams from one run are joinable across processes. Optional;
	// empty leaves everything untagged as before.
	RunID string

	// Progress receives live progress snapshots while the simulation
	// runs: for Simulate these are the generated program's stderr
	// heartbeats; for the in-process engines, step-loop ticks. Setting it
	// (or ProgressEvery) also records the Timeline in the Result.
	Progress func(Snapshot)
	// ProgressEvery is the snapshot interval (default 500ms).
	ProgressEvery time.Duration
	// Trace, when non-nil, records pipeline phase spans
	// (schedule/instrument/generate/compile/run) for this call.
	Trace *Tracer
}

// progressEvery returns the heartbeat interval, or 0 when progress
// reporting is disabled.
func (o *Options) progressEvery() time.Duration {
	if o.Progress == nil && o.ProgressEvery <= 0 {
		return 0
	}
	if o.ProgressEvery > 0 {
		return o.ProgressEvery
	}
	return obs.DefaultInterval
}

func (o *Options) steps() int64 {
	if o.Steps == 0 {
		return 1000
	}
	return o.Steps
}

// runSteps is the step bound handed to the harness: the 1000-step
// default applies only to unbudgeted runs — under a Budget, a zero
// Steps means budget-only and an explicit Steps bounds the run
// alongside the budget (whichever is reached first wins).
func (o *Options) runSteps() int64 {
	if o.Budget > 0 {
		return o.Steps
	}
	return o.steps()
}

// Result is a simulation outcome.
type Result struct {
	*simresult.Results
	layout *coverage.Layout

	// CacheHit reports that the generated binary came from the build
	// cache (CompileNanos is then the original build's amortised cost) —
	// how a serving layer proves cross-request compile amortization.
	CacheHit bool

	// WorkerReuse reports that this run was served by an already-warm
	// serve-mode worker — the per-run process startup was amortized away
	// (false for spawn-per-run execution and for a pool's first run).
	WorkerReuse bool

	// Batched reports that this run was one lane of a batched sweep
	// request: its suite shared one generated step loop (and, pooled,
	// one request frame) with the other lanes of its batch. ExecNanos is
	// then the batch wall clock split evenly across lanes, and coverage
	// lives only in the sweep's OR-merged record (Results.Coverage is
	// nil — set Options.DisableBatch for per-suite coverage).
	Batched bool

	// Opt reports what the optimizing middle-end did (nil only for
	// results that never went through prepare).
	Opt *OptStats

	// Part reports the partitioning decision (nil when partitioning was
	// not requested or the engine does not partition). A declined
	// request still runs — sequentially — with the reason recorded.
	Part *PartStats

	// ArtifactHash is the content-hash key of the generated program
	// (codegen.Program.Hash): the build-cache key of the binary this run
	// executed. A fleet coordinator uses it to learn which nodes hold
	// which artifacts ("" for the in-process engines, which compile
	// nothing).
	ArtifactHash string
}

// CoverageReport computes the four coverage percentages, or a zero report
// when coverage was not collected.
func (r *Result) CoverageReport() CoverageReport {
	if r.Results.Coverage == nil || r.layout == nil {
		return CoverageReport{}
	}
	return r.layout.Report(r.Results.Coverage)
}

// Uncovered lists the coverage points the run missed, as human-readable
// lines ("actor M_SUB_ADD2 never executed", "decision ... never false"),
// or nil when coverage was not collected.
func (r *Result) Uncovered() []string {
	if r.Results.Coverage == nil || r.layout == nil {
		return nil
	}
	return r.layout.Uncovered(r.Results.Coverage)
}

// CSVTestCases loads stimuli from a CSV file (one column per input port,
// one row per step, cycled).
func CSVTestCases(path string) (*TestCases, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("accmos: %w", err)
	}
	defer f.Close()
	return testcase.ReadCSV(f)
}

// Compile elaborates and schedules a model (the model preprocessing step).
func Compile(m *Model) (*actors.Compiled, error) { return actors.Compile(m) }

// LintFinding is one static model diagnosis.
type LintFinding = lint.Finding

// Lint runs the static model checks (dead logic, constant branch
// conditions, downcasts, coupled MC/DC conditions, ...) without
// simulating.
func Lint(m *Model) ([]LintFinding, error) {
	c, err := actors.Compile(m)
	if err != nil {
		return nil, err
	}
	return lint.Check(c), nil
}

// GenerateSource returns the instrumented simulation program AccMoS
// generates for m, without compiling it — useful for inspection.
func GenerateSource(m *Model, opts Options) (string, error) {
	or, tcs, err := prepare(m, &opts)
	if err != nil {
		return "", err
	}
	pp := partitionPlan(&opts, or.Compiled)
	prog, err := codegen.Generate(or.Compiled, codegenOptions(opts, tcs, or, pp))
	if err != nil {
		return "", err
	}
	return prog.Source, nil
}

// ProgramHash returns the content-hash key the build cache would use for
// m under opts — the codegen.Program.Hash of the generated (but not
// compiled) program. Two callers computing it with identical model
// documents and options get identical keys, which is what lets a fleet
// coordinator route jobs to the node whose cache already holds the
// binary without ever compiling anything itself. Sweep jobs force
// coverage on (exactly as Sweep does), so pass the options the job will
// actually run with.
func ProgramHash(m *Model, opts Options) (string, error) {
	or, tcs, err := prepare(m, &opts)
	if err != nil {
		return "", err
	}
	pp := partitionPlan(&opts, or.Compiled)
	prog, err := codegen.Generate(or.Compiled, codegenOptions(opts, tcs, or, pp))
	if err != nil {
		return "", err
	}
	return prog.Hash(), nil
}

// prepare compiles the model, fills the test-case default, and runs the
// optimizing middle-end. Every entry point — all four engines and source
// generation — consumes the returned opt.Result, so one pass pipeline
// accelerates every execution path.
func prepare(m *Model, opts *Options) (*opt.Result, *TestCases, error) {
	if opts.RunID != "" {
		// Stamp the correlation ID everywhere this call emits telemetry:
		// the tracer's spans, and every progress snapshot (the harness
		// stamps heartbeats from generated binaries itself; this wrapper
		// covers the in-process engines, which publish snapshots directly).
		opts.Trace.SetCorr(opts.RunID)
		if cb, corr := opts.Progress, opts.RunID; cb != nil {
			opts.Progress = func(s Snapshot) {
				if s.Corr == "" {
					s.Corr = corr
				}
				cb(s)
			}
		}
	}
	sp := opts.Trace.Start("schedule")
	c, err := actors.Compile(m)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	tcs := opts.TestCases
	if tcs == nil {
		tcs = testcase.NewRandomSet(len(c.Inports), 1, -1, 1)
	}
	osp := opts.Trace.Start("optimize")
	or, err := opt.Optimize(c, opt.Options{
		Level:       opts.OptLevel.level(),
		Coverage:    opts.Coverage,
		Diagnose:    opts.Diagnose,
		Monitor:     opts.Monitor,
		Custom:      opts.Custom,
		StopOnActor: opts.StopOnActor,
		Trace:       opts.Trace,
	})
	osp.End()
	if err != nil {
		return nil, nil, err
	}
	return or, tcs, nil
}

// optStats renders an opt.Result for the public Result.
func optStats(opts *Options, or *opt.Result) *OptStats {
	return &OptStats{
		Level:           opts.OptLevel.String(),
		ActorsBefore:    or.ActorsBefore,
		ActorsAfter:     or.ActorsAfter,
		Passes:          or.Passes,
		FusedExprs:      or.FusedExprs,
		HoistedExprs:    or.HoistedExprs,
		NarrowedSignals: or.NarrowedSignals,
		EffectiveActors: or.EffectiveActors,
	}
}

func codegenOptions(opts Options, tcs *TestCases, or *opt.Result, pp *partition.Plan) codegen.Options {
	return codegen.Options{
		Partition:         pp,
		Coverage:          opts.Coverage,
		Diagnose:          opts.Diagnose,
		Monitor:           opts.Monitor,
		Custom:            opts.Custom,
		MaxMonitorSamples: opts.MaxMonitorSamples,
		StopOnDiag:        opts.StopOnDiag,
		StopOnActor:       opts.StopOnActor,
		TestCases:         tcs,
		Trace:             opts.Trace,
		Layout:            or.Layout,
		Premark:           or.Premark,
		Opt:               opts.OptLevel.String(),
		Plan:              or.Plan,
		DefaultSteps: func() int64 {
			if opts.Steps > 0 {
				return opts.Steps
			}
			return 1000
		}(),
	}
}

// Simulate runs the full AccMoS pipeline on m: model preprocessing,
// simulation-oriented instrumentation, simulation code synthesis,
// compilation, and execution. Compiled binaries are cached by program
// content (unless WorkDir pins the artifacts), so repeated calls on the
// same model and options skip the go build step.
func Simulate(m *Model, opts Options) (*Result, error) {
	return SimulateContext(context.Background(), m, opts)
}

// SimulateContext is Simulate with the execution phase bounded by ctx:
// cancellation (or Options.Timeout) kills the generated binary's process
// group and surfaces an error instead of blocking on a wedged program.
func SimulateContext(ctx context.Context, m *Model, opts Options) (*Result, error) {
	or, tcs, err := prepare(m, &opts)
	if err != nil {
		return nil, err
	}
	pp := partitionPlan(&opts, or.Compiled)
	prog, err := codegen.Generate(or.Compiled, codegenOptions(opts, tcs, or, pp))
	if err != nil {
		return nil, err
	}
	bin, compileTime, hit, err := buildProgram(prog, &opts)
	if err != nil {
		return nil, err
	}
	ro := harness.RunOptions{
		Steps:     opts.runSteps(),
		Budget:    opts.Budget,
		Model:     m.Name,
		RunID:     opts.RunID,
		Timeout:   opts.Timeout,
		Heartbeat: opts.progressEvery(),
		Progress:  opts.Progress,
		Trace:     opts.Trace,
	}
	var (
		res    *simresult.Results
		reused bool
	)
	if opts.Pool != nil {
		res, reused, err = opts.Pool.RunContext(ctx, bin, ro)
	} else {
		res, err = harness.RunContext(ctx, bin, ro)
	}
	if err != nil {
		return nil, err
	}
	res.CompileNanos = compileTime.Nanoseconds()
	return &Result{Results: res, layout: prog.Layout, CacheHit: hit, WorkerReuse: reused, Opt: optStats(&opts, or), Part: partStats(pp), ArtifactHash: prog.Hash()}, nil
}

// buildProgram compiles prog honouring the WorkDir contract: a pinned
// WorkDir gets a fresh uncached build (the caller wants inspectable
// artifacts there); otherwise a content-hash cache — Options.Cache, or
// the process-wide default — serves repeated builds of the same program.
func buildProgram(prog *codegen.Program, opts *Options) (bin string, compileTime time.Duration, hit bool, err error) {
	if opts.WorkDir != "" {
		bin, compileTime, err = harness.BuildTraced(prog, opts.WorkDir, opts.Trace)
		return bin, compileTime, false, err
	}
	cache := opts.Cache
	if cache == nil {
		cache = harness.DefaultCache
	}
	return cache.Build(prog, opts.Trace)
}

// SweepResult aggregates a multi-suite coverage sweep.
type SweepResult struct {
	// Runs holds each suite's individual results, in seedXors order.
	Runs   []*Result
	layout *coverage.Layout
	merged *coverage.Raw
}

// MergedCoverage reports coverage accumulated across every suite.
func (s *SweepResult) MergedCoverage() CoverageReport {
	if s.merged == nil {
		return CoverageReport{}
	}
	return s.layout.Report(s.merged)
}

// MergedUncovered lists the points no suite reached.
func (s *SweepResult) MergedUncovered() []string {
	if s.merged == nil {
		return nil
	}
	return s.layout.Uncovered(s.merged)
}

// Sweep compiles the model once and executes it under one random test
// suite per seedXor (each XORed into the embedded uniform seeds), merging
// coverage across suites — the test-adequacy workflow the paper motivates:
// keep adding random suites until the merged coverage stops growing.
// Coverage is forced on. When the options allow it (no Budget,
// DisableBatch unset), groups of seeds execute through the generated
// batch entry point — one cache-hot step loop over all lanes — and
// fall back to per-run execution (pooled or spawn) otherwise; hashes,
// diagnostics and merged coverage are bit-identical either way, though
// batched lanes skip per-suite coverage detail. Per-run suites run concurrently
// across a bounded worker pool (Options.Parallelism, default
// GOMAXPROCS); the merged coverage and the Runs order are deterministic
// regardless of worker count or batching.
func Sweep(m *Model, opts Options, seedXors []uint64) (*SweepResult, error) {
	return SweepContext(context.Background(), m, opts, seedXors)
}

// SweepContext is Sweep bounded by a context: cancelling ctx (or an
// Options.Timeout expiring on any suite) kills the in-flight generated
// binaries and returns the first error. Alongside a non-nil error the
// returned SweepResult is the partial sweep: suites that never finished
// leave nil entries in Runs (callers must nil-check before dereferencing)
// and the merged coverage covers only the completed suites.
func SweepContext(ctx context.Context, m *Model, opts Options, seedXors []uint64) (*SweepResult, error) {
	if len(seedXors) == 0 {
		return nil, fmt.Errorf("accmos: Sweep needs at least one seed")
	}
	opts.Coverage = true
	or, tcs, err := prepare(m, &opts)
	if err != nil {
		return nil, err
	}
	pp := partitionPlan(&opts, or.Compiled)
	prog, err := codegen.Generate(or.Compiled, codegenOptions(opts, tcs, or, pp))
	if err != nil {
		return nil, err
	}
	bin, compileTime, cacheHit, err := buildProgram(prog, &opts)
	if err != nil {
		return nil, err
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seedXors) {
		workers = len(seedXors)
	}
	pool := opts.Pool
	if pool == nil && opts.Workers > 0 {
		pool = NewWorkerPool(opts.Workers)
		defer pool.Close()
	}

	// Batched lane execution: when nothing demands per-run semantics —
	// no wall-clock Budget (batch runs are step-bounded) — groups of
	// seeds run through the generated batch entry point instead of one
	// request per seed. Progress still streams, but each heartbeat
	// aggregates over a whole batch's lanes.
	if !opts.DisableBatch && opts.Budget == 0 {
		return sweepBatch(ctx, m, &opts, or, pp, prog, bin, compileTime, cacheHit, seedXors, workers, pool)
	}

	sw := &SweepResult{layout: prog.Layout, merged: prog.Layout.NewRaw()}
	runs := make([]*Result, len(seedXors))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mergeMu  sync.Mutex // guards sw.merged (bitwise OR: order-independent)
		cbMu     sync.Mutex // serialises the caller's Progress callback
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel() // kill in-flight suites; queued ones are skipped
		})
	}
	jobs := make(chan int)
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range jobs {
				if runCtx.Err() != nil {
					continue
				}
				ro := harness.RunOptions{
					Steps:     opts.runSteps(),
					Budget:    opts.Budget,
					SeedXor:   seedXors[i],
					Model:     m.Name,
					Suite:     i + 1,
					RunID:     opts.RunID,
					Timeout:   opts.Timeout,
					Heartbeat: opts.progressEvery(),
					Trace:     opts.Trace,
				}
				if cb := opts.Progress; cb != nil {
					suite := i + 1
					ro.Progress = func(s Snapshot) {
						s.Worker, s.Suite = worker, suite
						cbMu.Lock()
						defer cbMu.Unlock()
						cb(s)
					}
				}
				var (
					res    *simresult.Results
					reused bool
					err    error
				)
				if pool != nil {
					res, reused, err = pool.RunContext(runCtx, bin, ro)
				} else {
					res, err = harness.RunContext(runCtx, bin, ro)
				}
				if err != nil {
					fail(err)
					continue
				}
				res.CompileNanos = compileTime.Nanoseconds()
				if res.Coverage != nil {
					mergeMu.Lock()
					err = sw.merged.Merge(res.Coverage)
					mergeMu.Unlock()
					if err != nil {
						fail(err)
						continue
					}
				}
				runs[i] = &Result{Results: res, layout: prog.Layout, CacheHit: cacheHit, WorkerReuse: reused, Opt: optStats(&opts, or), Part: partStats(pp), ArtifactHash: prog.Hash()}
			}
		}(w)
	}
	for i := range seedXors {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	// Errors still hand back the partial sweep: completed suites keep
	// their Runs slots (unfinished ones stay nil) and the merged
	// coverage reflects what actually ran.
	sw.Runs = runs
	if firstErr != nil {
		return sw, firstErr
	}
	if err := ctx.Err(); err != nil {
		return sw, err
	}
	return sw, nil
}

// sweepBatch executes a sweep through the generated batch entry point:
// the seeds are partitioned into contiguous chunks — at most `workers`
// concurrent requests, each covering at least minBatchLanes lanes when
// the seed count allows — and every chunk dispatches as one batched
// lane run: pooled (one serve frame for the whole chunk) when a pool is
// available, a single spawn otherwise. Per-lane results land in their
// seed's Runs slot and coverage is OR-merged under the sweep mutex, so
// Runs order and merged coverage match per-run execution exactly.
func sweepBatch(ctx context.Context, m *Model, opts *Options, or *opt.Result, pp *partition.Plan, prog *codegen.Program, bin string, compileTime time.Duration, cacheHit bool, seedXors []uint64, workers int, pool *WorkerPool) (*SweepResult, error) {
	// Below this many lanes per request, framing overhead eats the
	// batching win; prefer fewer, fuller batches over maximal fan-out.
	const minBatchLanes = 8
	nb := workers
	if maxNB := (len(seedXors) + minBatchLanes - 1) / minBatchLanes; nb > maxNB {
		nb = maxNB
	}
	if nb < 1 {
		nb = 1
	}
	sw := &SweepResult{layout: prog.Layout, merged: prog.Layout.NewRaw()}
	runs := make([]*Result, len(seedXors))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mergeMu  sync.Mutex // guards sw.merged and runs
		cbMu     sync.Mutex // serialises the caller's Progress callback
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel() // kill in-flight batches
		})
	}
	for b := 0; b < nb; b++ {
		lo, hi := b*len(seedXors)/nb, (b+1)*len(seedXors)/nb
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(batch, lo, hi int) {
			defer wg.Done()
			if runCtx.Err() != nil {
				return
			}
			chunk := seedXors[lo:hi]
			ro := harness.RunOptions{
				Steps:     opts.steps(),
				Model:     m.Name,
				Suite:     lo + 1, // first suite of the chunk, for error labels
				RunID:     opts.RunID,
				Heartbeat: opts.progressEvery(),
				Trace:     opts.Trace,
			}
			if cb := opts.Progress; cb != nil {
				suite := lo + 1
				ro.Progress = func(s Snapshot) {
					// One snapshot per batch heartbeat: Steps counts
					// all lanes' progress combined, tagged with the
					// chunk's first suite and its batch index.
					s.Worker, s.Suite = batch, suite
					cbMu.Lock()
					defer cbMu.Unlock()
					cb(s)
				}
			}
			if opts.Timeout > 0 {
				// Options.Timeout is a per-run bound; one batch request
				// covers the whole chunk's worth of stepping.
				ro.Timeout = opts.Timeout * time.Duration(len(chunk))
			}
			var (
				res    []*simresult.Results
				cov    *coverage.Raw
				reused bool
				err    error
			)
			if pool != nil {
				res, cov, reused, err = pool.RunBatch(runCtx, bin, ro, chunk)
			} else {
				res, cov, err = harness.RunBatch(runCtx, bin, ro, chunk)
			}
			if err != nil {
				fail(err)
				return
			}
			mergeMu.Lock()
			defer mergeMu.Unlock()
			// Lanes share the batch's monotone bitmaps, so the batch
			// reports one OR-merged coverage section instead of a copy
			// per lane; per-run coverage detail needs DisableBatch.
			if cov != nil {
				if err := sw.merged.Merge(cov); err != nil {
					fail(err)
					return
				}
			}
			for j, r := range res {
				r.CompileNanos = compileTime.Nanoseconds()
				runs[lo+j] = &Result{
					Results: r, layout: prog.Layout, CacheHit: cacheHit,
					WorkerReuse: reused, Batched: true, Opt: optStats(opts, or),
					ArtifactHash: prog.Hash(),
				}
			}
		}(b+1, lo, hi)
	}
	wg.Wait()
	sw.Runs = runs
	if firstErr != nil {
		return sw, firstErr
	}
	if err := ctx.Err(); err != nil {
		return sw, err
	}
	return sw, nil
}

// Interpret runs m on the reference interpreted engine (the SSE baseline)
// with the same functionality: full diagnostics, coverage, monitoring and
// custom checks.
func Interpret(m *Model, opts Options) (*Result, error) {
	or, tcs, err := prepare(m, &opts)
	if err != nil {
		return nil, err
	}
	e, err := interp.New(or.Compiled, interp.Options{
		Coverage:          opts.Coverage,
		Diagnose:          opts.Diagnose,
		Monitor:           opts.Monitor,
		Custom:            opts.Custom,
		MaxMonitorSamples: opts.MaxMonitorSamples,
		StopOnDiag:        opts.StopOnDiag,
		StopOnActor:       opts.StopOnActor,
		Progress:          opts.Progress,
		ProgressEvery:     opts.progressEvery(),
		Layout:            or.Layout,
		Premark:           or.Premark,
	})
	if err != nil {
		return nil, err
	}
	sp := opts.Trace.Start("run")
	var res *simresult.Results
	if opts.Budget > 0 {
		res, err = e.RunFor(tcs, opts.Budget)
	} else {
		res, err = e.Run(tcs, opts.steps())
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	return &Result{Results: res, layout: e.Layout(), Opt: optStats(&opts, or)}, nil
}

// Accelerate runs m on the Accelerator-mode baseline (compiled closures,
// per-step host synchronisation, no diagnostics or coverage).
func Accelerate(m *Model, opts Options) (*Result, error) {
	or, tcs, err := prepare(m, &opts)
	if err != nil {
		return nil, err
	}
	e, err := interp.NewAccel(or.Compiled)
	if err != nil {
		return nil, err
	}
	if every := opts.progressEvery(); every > 0 {
		e.SetProgress(every, opts.Progress)
	}
	sp := opts.Trace.Start("run")
	var res *simresult.Results
	if opts.Budget > 0 {
		res, err = e.RunFor(tcs, opts.Budget)
	} else {
		res, err = e.Run(tcs, opts.steps())
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	return &Result{Results: res, Opt: optStats(&opts, or)}, nil
}

// RapidAccelerate runs m on the Rapid-Accelerator-mode baseline (unboxed
// precompiled closures, batched host synchronisation, no diagnostics or
// coverage).
func RapidAccelerate(m *Model, opts Options) (*Result, error) {
	or, tcs, err := prepare(m, &opts)
	if err != nil {
		return nil, err
	}
	e, err := rapid.New(or.Compiled)
	if err != nil {
		return nil, err
	}
	if every := opts.progressEvery(); every > 0 {
		e.SetProgress(every, opts.Progress)
	}
	sp := opts.Trace.Start("run")
	var res *simresult.Results
	if opts.Budget > 0 {
		res, err = e.RunFor(tcs, opts.Budget)
	} else {
		res, err = e.Run(tcs, opts.steps())
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	return &Result{Results: res, Opt: optStats(&opts, or)}, nil
}
